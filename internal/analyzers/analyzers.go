// Package analyzers is the repo's determinism lint: a small, self-contained
// static-analysis framework plus shared helpers for the analyzer suite that
// turns the repo's bit-identical contracts (seeded RNG draws, order-free map
// reductions, wall-clock-free deterministic paths, zero-alloc hot loops)
// into compile-time gates enforced by cmd/iotml-lint, `make lint`, and CI.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer / Pass / Diagnostic, `// want` fixture tests under
// internal/analyzers/antest) but is built on the standard library only:
// the build environment is hermetic — no module proxy — so instead of
// depending on x/tools the package carries the minimal surface the suite
// needs. Porting an analyzer here onto the real go/analysis API is a
// mechanical rename.
//
// # Suppression annotations
//
// A diagnostic is suppressed by an allow directive WITH a justification:
//
//	//iotml:allow <analyzer> -- <why this occurrence is exempt>
//
// placed on the offending line, on the line directly above it, or in the
// doc comment of the enclosing function (which exempts the whole body).
// A directive without the ` -- justification` part suppresses nothing, so
// every exemption in the tree documents its reason.
//
// The hotpathalloc analyzer is opt-in per function via a separate marker in
// the function's doc comment:
//
//	//iotml:hotpath
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one lint pass: a named, documented contract plus
// the function that checks a single package against it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //iotml:allow annotations.
	Name string
	// Doc is the contract the analyzer enforces; the first line is the
	// one-sentence summary `iotml-lint -list` prints.
	Doc string
	// Run reports violations on pass via pass.Reportf.
	Run func(*Pass) error
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's syntax. For the merged in-package variant it
	// includes _test.go files; analyzers that exempt tests must check
	// IsTestFile per file.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags []Diagnostic
}

// RunAnalyzer applies a to the loaded package and returns the surviving
// (non-suppressed) diagnostics in source order.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	return pass.diags, nil
}

// Reportf records a diagnostic at pos unless an //iotml:allow annotation
// (with justification) covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allowed(pos) {
		return
	}
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether f is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// ImportedPkg returns the import path of the package e names when e is a
// package-qualifier identifier (the `rand` in rand.Intn), or "".
func (p *Pass) ImportedPkg(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// FileFor returns the syntax file containing pos, or nil.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// allowed reports whether an //iotml:allow directive with a justification
// covers pos for this pass's analyzer.
func (p *Pass) allowed(pos token.Pos) bool {
	f := p.FileFor(pos)
	if f == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			name, just, ok := parseAllow(c.Text)
			if !ok || just == "" || name != p.Analyzer.Name {
				continue
			}
			cl := p.Fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	if fd := enclosingFuncDecl(f, pos); fd != nil && fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if name, just, ok := parseAllow(c.Text); ok && just != "" && name == p.Analyzer.Name {
				return true
			}
		}
	}
	return false
}

// parseAllow decodes an `//iotml:allow <analyzer> -- <justification>`
// directive. ok is false for non-directive comments; justification is ""
// when the ` -- reason` part is missing (the directive then has no effect).
func parseAllow(text string) (analyzer, justification string, ok bool) {
	const prefix = "//iotml:allow "
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	name, just, found := strings.Cut(rest, "--")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", "", false
	}
	if !found {
		return name, "", true
	}
	return name, strings.TrimSpace(just), true
}

// HasDirective reports whether doc contains an `//iotml:<name>` marker
// (exactly, or followed by a space and free text).
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	marker := "//iotml:" + name
	for _, c := range doc.List {
		if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") {
			return true
		}
	}
	return false
}

// enclosingFuncDecl returns the top-level function declaration whose body
// spans pos, or nil.
func enclosingFuncDecl(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// deterministicPkgs names the packages whose selections must be
// bit-identical across worker counts and process boundaries (the suites
// ROADMAP PRs 1–9 defend with after-the-fact equivalence tests). The
// maporder and walltime analyzers scope their contracts to these.
var deterministicPkgs = map[string]bool{
	"mkl":        true,
	"parsearch":  true,
	"distsearch": true,
	"kernel":     true,
	"engine":     true,
	"core":       true,
}

// DeterministicPackage reports whether the import path names one of the
// deterministic packages (matched by path segment, so both
// "repro/internal/mkl" and an analyzer fixture package "mkl" qualify).
func DeterministicPackage(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if deterministicPkgs[seg] {
			return true
		}
	}
	return false
}
