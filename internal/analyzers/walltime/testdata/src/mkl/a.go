// Package mkl is the walltime fixture for a deterministic package.
package mkl

import "time"

func stamp() time.Time {
	return time.Now() // want `wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall clock`
}

func timerIsFine(d time.Duration) *time.Timer {
	return time.NewTimer(d) // ok: timers gate progress, they never enter results
}

// emit mirrors the repo's progress-event emitters: the timestamp is
// observability metadata that never feeds a selection.
//
//iotml:allow walltime -- progress timestamps are observability-only and never feed a selection
func emit() time.Time {
	return time.Now()
}

func lineAllowed() time.Time {
	return time.Now() //iotml:allow walltime -- test fixture for line-level allows
}
