// Package other pins that walltime leaves packages outside the
// deterministic set alone.
package other

import "time"

func stamp() time.Time {
	return time.Now() // ok: not a deterministic package
}
