// Package walltime flags wall-clock reads (time.Now, time.Since) in the
// deterministic packages. Search selections, Gram assembly, and shard
// merges must be pure functions of (dataset, config, seed); a wall-clock
// read in those paths is either dead weight or a latent source of
// run-to-run divergence. Progress-event emitters — whose timestamps are
// observability metadata that never feeds a selection — carry a
// function-level //iotml:allow walltime annotation.
package walltime

import (
	"go/ast"

	"repro/internal/analyzers"
)

// Analyzer is the walltime pass.
var Analyzer = &analyzers.Analyzer{
	Name: "walltime",
	Doc: `flags time.Now/time.Since in the deterministic packages (mkl, parsearch, distsearch, kernel, engine, core)

Deterministic paths must be reproducible from (dataset, config, seed)
alone. Timestamps that exist purely for observability (progress events)
are exempted with //iotml:allow walltime -- <why> on the emitting
function.`,
	Run: run,
}

func run(pass *analyzers.Pass) error {
	if !analyzers.DeterministicPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pass.ImportedPkg(sel.X) != "time" {
				return true
			}
			switch sel.Sel.Name {
			case "Now", "Since":
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock in deterministic package %s; results there must be pure functions of (dataset, config, seed) — move the read to the edge or annotate an observability-only emitter with //iotml:allow walltime -- <why>",
					sel.Sel.Name, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
