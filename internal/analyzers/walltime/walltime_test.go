package walltime_test

import (
	"testing"

	"repro/internal/analyzers/antest"
	"repro/internal/analyzers/walltime"
)

func TestWallTimeDeterministicPackage(t *testing.T) {
	antest.Run(t, walltime.Analyzer, "testdata/src/mkl")
}

func TestWallTimeOtherPackagesExempt(t *testing.T) {
	antest.Run(t, walltime.Analyzer, "testdata/src/other")
}
