package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked unit ready for analysis. In-package
// test files are merged into their package's unit (so tag-gated *_test.go
// files are analyzed under the right -tags); external _test packages load
// as their own unit with IsXTest set.
type Package struct {
	// ImportPath is the package's import path; external test packages get
	// the "_test"-suffixed path the compiler uses.
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	IsXTest    bool
}

// LoadConfig parameterizes Load.
type LoadConfig struct {
	// Dir is the directory go list runs in ("" = current directory).
	Dir string
	// Tags are extra build tags (loadsmoke, scalesmoke) applied to file
	// selection, exactly like `go build -tags`.
	Tags []string
}

// Load resolves patterns with `go list`, then parses and type-checks every
// matched package — production and test files — from source. Dependencies
// outside the module resolve through the standard library's source
// importer, so the whole load is hermetic: no module proxy, no export
// data, no network.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	// The source importer consults the global build context; cgo stays off
	// so stdlib packages select their pure-Go variants (the module itself
	// is pure Go, so this changes nothing for local packages).
	build.Default.CgoEnabled = false

	modPath, modRoot, err := moduleInfo(cfg.Dir)
	if err != nil {
		return nil, err
	}
	targets, err := goList(cfg, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		tags:    cfg.Tags,
		modPath: modPath,
		modRoot: modRoot,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:   map[string]*types.Package{},
		loading: map[string]bool{},
	}

	var out []*Package
	for _, t := range topoSort(targets) {
		merged, err := ld.checkFiles(t.ImportPath, t.Dir, append(append([]string{}, t.GoFiles...), t.TestGoFiles...), true)
		if err != nil {
			return nil, err
		}
		// Register the merged variant as the import target so external
		// test packages (and later targets) see in-package test helpers.
		ld.cache[t.ImportPath] = merged.Types
		out = append(out, merged)
		if len(t.XTestGoFiles) > 0 {
			xt, err := ld.checkFiles(t.ImportPath+"_test", t.Dir, t.XTestGoFiles, true)
			if err != nil {
				return nil, err
			}
			xt.IsXTest = true
			out = append(out, xt)
		}
	}
	return out, nil
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Error        *struct{ Err string }
}

func goList(cfg LoadConfig, patterns []string) ([]*listPkg, error) {
	args := []string{"list", "-json"}
	if len(cfg.Tags) > 0 {
		args = append(args, "-tags", strings.Join(cfg.Tags, ","))
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(outBytes))
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported by iotml-lint", p.ImportPath)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func moduleInfo(dir string) (path, root string, err error) {
	cmd := exec.Command("go", "list", "-m", "-json")
	cmd.Dir = dir
	outBytes, err := cmd.Output()
	if err != nil {
		return "", "", fmt.Errorf("go list -m: %v", err)
	}
	var m struct{ Path, Dir string }
	if err := json.Unmarshal(outBytes, &m); err != nil {
		return "", "", fmt.Errorf("decoding go list -m output: %v", err)
	}
	return m.Path, m.Dir, nil
}

// topoSort orders targets so every target is checked after the targets it
// (or its test files) imports: the merged test-inclusive variant of a
// dependency must be registered before a dependent resolves it. Ties and
// any residue (test-only cycles are legal in Go) break in path order, so
// the load order — like everything else in this repo — is deterministic.
func topoSort(targets []*listPkg) []*listPkg {
	byPath := make(map[string]*listPkg, len(targets))
	for _, t := range targets {
		byPath[t.ImportPath] = t
	}
	indeg := make(map[string]int, len(targets))
	dependents := make(map[string][]string, len(targets))
	for _, t := range targets {
		indeg[t.ImportPath] += 0
		seen := map[string]bool{}
		for _, imp := range concat(t.Imports, t.TestImports, t.XTestImports) {
			if imp == t.ImportPath || seen[imp] || byPath[imp] == nil {
				continue
			}
			seen[imp] = true
			indeg[t.ImportPath]++
			dependents[imp] = append(dependents[imp], t.ImportPath)
		}
	}
	var ready []string
	for p, d := range indeg {
		if d == 0 {
			ready = append(ready, p)
		}
	}
	sort.Strings(ready)
	var order []*listPkg
	for len(ready) > 0 {
		p := ready[0]
		ready = ready[1:]
		order = append(order, byPath[p])
		var freed []string
		for _, dep := range dependents[p] {
			if indeg[dep]--; indeg[dep] == 0 {
				freed = append(freed, dep)
			}
		}
		sort.Strings(freed)
		ready = mergeSorted(ready, freed)
	}
	if len(order) < len(targets) { // cycle residue: append deterministically
		var rest []string
		for p, d := range indeg {
			if d > 0 {
				rest = append(rest, p)
			}
		}
		sort.Strings(rest)
		for _, p := range rest {
			order = append(order, byPath[p])
		}
	}
	return order
}

func concat(ss ...[]string) []string {
	var out []string
	for _, s := range ss {
		out = append(out, s...)
	}
	return out
}

func mergeSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	for len(a) > 0 && len(b) > 0 {
		if a[0] <= b[0] {
			out, a = append(out, a[0]), a[1:]
		} else {
			out, b = append(out, b[0]), b[1:]
		}
	}
	return append(append(out, a...), b...)
}

// loader resolves imports during type checking: module-local packages are
// type-checked recursively from source (honoring the configured build
// tags), everything else goes through the stdlib source importer.
type loader struct {
	fset    *token.FileSet
	tags    []string
	modPath string
	modRoot string
	std     types.ImporterFrom
	cache   map[string]*types.Package
	loading map[string]bool
}

func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if l.loading[path] {
			return nil, fmt.Errorf("import cycle through test files at %s", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		pkg, err := l.loadLocal(path)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg.Types
		return pkg.Types, nil
	}
	p, err := l.std.ImportFrom(path, dir, mode)
	if err != nil {
		return nil, err
	}
	l.cache[path] = p
	return p, nil
}

// loadLocal type-checks the production files of a module-local package that
// was pulled in as a dependency (when linting a sub-pattern rather than
// ./..., which registers every local package up front in topological
// order).
func (l *loader) loadLocal(path string) (*Package, error) {
	dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath)))
	bctx := build.Default
	bctx.BuildTags = append([]string{}, l.tags...)
	bp, err := bctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("resolving %s: %v", path, err)
	}
	return l.checkFiles(path, dir, bp.GoFiles, false)
}

// checkFiles parses and type-checks the named files as one package. With
// fullInfo the returned Package carries the type facts analyzers consume;
// dependency loads skip them.
func (l *loader) checkFiles(path, dir string, names []string, fullInfo bool) (*Package, error) {
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	var info *types.Info
	if fullInfo {
		info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if len(errs) < 10 {
				errs = append(errs, err)
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
