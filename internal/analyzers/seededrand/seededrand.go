// Package seededrand flags math/rand usage that escapes the repo's
// seed-threading discipline: draws from the process-global source and RNG
// constructions seeded from the wall clock. Every search, kernel, and
// dataset RNG must be parameterized by an explicit seed so selections stay
// bit-identical across runs, worker counts, and process boundaries.
package seededrand

import (
	"go/ast"

	"repro/internal/analyzers"
)

// Analyzer is the seededrand pass.
var Analyzer = &analyzers.Analyzer{
	Name: "seededrand",
	Doc: `flags math/rand draws from the process-global source and RNG construction seeded from the wall clock

The determinism contract threads every random draw through an explicit
seed (stats.NewRNG, Config.Seed, per-block seeds). The process-global
math/rand source is randomly seeded since Go 1.20 and wall-clock seeds
differ per run, so either one silently breaks bit-identical selections.
Intentional nondeterminism (serve/retry jitter at the CLI edge) carries
an //iotml:allow seededrand -- <why> annotation.`,
	Run: run,
}

// globalFns are the math/rand (and math/rand/v2) package-level functions
// that draw from the process-global source.
var globalFns = map[string]bool{
	// math/rand
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
	// math/rand/v2 additions
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true, "N": true,
}

// ctorFns construct sources or generators from a caller-supplied seed; a
// wall-clock expression in their arguments defeats the point.
var ctorFns = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
	"NewZipf": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func run(pass *analyzers.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isRandPkg(pass.ImportedPkg(sel.X)) {
				return true
			}
			name := sel.Sel.Name
			if globalFns[name] {
				pass.Reportf(call.Pos(),
					"rand.%s draws from the process-global math/rand source; construct a seeded *rand.Rand (e.g. rand.New(rand.NewSource(seed))) so the draw is reproducible", name)
			}
			if ctorFns[name] && seededFromWallClock(pass, call) {
				pass.Reportf(call.Pos(),
					"rand.%s is seeded from the wall clock (time.Now); thread an explicit seed instead — deterministic in tests, time-seeded only at the CLI edge", name)
			}
			return true
		})
	}
	return nil
}

// seededFromWallClock reports whether ctor's arguments contain a time.Now
// call. Arguments that are themselves rand constructors are skipped — the
// nested constructor reports once at the innermost offender.
func seededFromWallClock(pass *analyzers.Pass, ctor *ast.CallExpr) bool {
	found := false
	for _, arg := range ctor.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				pkg := pass.ImportedPkg(sel.X)
				if isRandPkg(pkg) && ctorFns[sel.Sel.Name] {
					return false // inner constructor reports for itself
				}
				if pkg == "time" && sel.Sel.Name == "Now" {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}
