// Package v2 pins the math/rand/v2 spellings of the seededrand contract.
package v2

import (
	"math/rand/v2"
	"time"
)

func globalSource() int {
	return rand.IntN(10) // want `process-global`
}

func globalN() int {
	return rand.N(10) // want `process-global`
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), 1)) // want `seeded from the wall clock`
}

func seeded(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xda942042e4dd58b5)) // ok: explicit seed
}
