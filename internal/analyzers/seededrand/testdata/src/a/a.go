// Package a is the seededrand fixture: flagged global-source draws and
// wall-clock seeds next to the allowed seeded forms.
package a

import (
	"math/rand"
	"time"
)

func globalSource() int {
	return rand.Intn(10) // want `process-global`
}

func globalFloat() float64 {
	return rand.Float64() // want `process-global`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `process-global`
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from the wall clock`
}

func wallClockDirect() rand.Source {
	return rand.NewSource(int64(time.Now().Nanosecond())) // want `seeded from the wall clock`
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: explicit seed
}

func seededDerived(seed int64) rand.Source {
	return rand.NewSource(seed ^ 0x9e3779b9) // ok: explicit seed
}

func allowedJitter() int {
	return rand.Intn(3) //iotml:allow seededrand -- retry jitter only; never feeds a selection
}

func allowedAbove() int {
	//iotml:allow seededrand -- jitter fan-out at the CLI edge
	return rand.Intn(3)
}

func allowWithoutJustificationDoesNotSuppress() int {
	//iotml:allow seededrand
	return rand.Int() // want `process-global`
}

func localNamedRand() int {
	rand := struct{ n int }{n: 4} // shadowing ident must not confuse resolution
	return rand.n
}
