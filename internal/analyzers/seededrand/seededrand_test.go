package seededrand_test

import (
	"testing"

	"repro/internal/analyzers/antest"
	"repro/internal/analyzers/seededrand"
)

func TestSeededRand(t *testing.T) {
	antest.Run(t, seededrand.Analyzer, "testdata/src/a")
}

func TestSeededRandV2(t *testing.T) {
	antest.Run(t, seededrand.Analyzer, "testdata/src/v2")
}
