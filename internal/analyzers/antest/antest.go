// Package antest runs an analyzer over a fixture package and checks its
// diagnostics against `// want` annotations, mirroring the
// golang.org/x/tools/go/analysis/analysistest workflow on the stdlib-only
// framework in internal/analyzers.
//
// A fixture is one directory of Go files (conventionally
// testdata/src/<pkg> next to the analyzer). Every line that must produce a
// diagnostic carries a trailing comment with one or more quoted regular
// expressions:
//
//	sum += v // want `map-iteration order`
//
// Each want must be matched by a diagnostic on its line and each
// diagnostic must be claimed by a want, so fixtures pin both the flagged
// and the allowed forms.
package antest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analyzers"
)

// Run analyzes the fixture package in dir with a and asserts its
// diagnostics match the fixture's // want annotations. The package is
// type-checked from source (stdlib imports only), with the directory base
// name as its import path — name a fixture directory "mkl" to exercise
// deterministic-package-scoped analyzers, anything else to pin that
// non-deterministic packages stay unflagged.
func Run(t *testing.T, a *analyzers.Analyzer, dir string) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analyzers.RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	checkWants(t, pkg, diags)
}

func loadFixture(dir string) (*analyzers.Package, error) {
	build.Default.CgoEnabled = false
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	path := filepath.Base(dir)
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture: %v", err)
	}
	return &analyzers.Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

type lineKey struct {
	file string
	line int
}

func checkWants(t *testing.T, pkg *analyzers.Package, diags []analyzers.Diagnostic) {
	t.Helper()
	wants := map[lineKey][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				res, err := parseWants(c.Text)
				if err != nil {
					t.Fatalf("%s: %v", pkg.Fset.Position(c.Pos()), err)
				}
				if len(res) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				wants[k] = append(wants[k], res...)
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		wants[k][matched] = nil // claimed
	}
	var keys []lineKey
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				keys = append(keys, k)
				break
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, re := range wants[k] {
			if re != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// parseWants extracts the quoted regular expressions from a comment's
// `// want "re" `re`...` suffix (empty when the comment has none).
func parseWants(text string) ([]*regexp.Regexp, error) {
	idx := strings.Index(text, "// want ")
	if idx < 0 {
		return nil, nil
	}
	rest := strings.TrimSpace(text[idx+len("// want "):])
	var out []*regexp.Regexp
	for rest != "" {
		var lit string
		switch rest[0] {
		case '"':
			end := strings.Index(rest[1:], `"`)
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern in %q", text)
			}
			raw := rest[:end+2]
			var err error
			lit, err = strconv.Unquote(raw)
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %s: %v", raw, err)
			}
			rest = strings.TrimSpace(rest[end+2:])
		case '`':
			end := strings.Index(rest[1:], "`")
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern in %q", text)
			}
			lit = rest[1 : end+1]
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted strings: %q", rest)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", lit, err)
		}
		out = append(out, re)
	}
	return out, nil
}
