// Dense32 is the Float32 backend's Gram assembly: a concurrency-safe
// per-block float32 Gram cache mirroring kernel.BlockGramCache (same block
// keys, same FIFO retention semantics, same combine order), plus the
// worker-owned assembly scratch and ridge solver the evaluator threads
// through it.
//
// Determinism: each block Gram is produced by one deterministic routine
// over the cached float32 column block — two workers racing on a cold
// block compute identical matrices and the first store wins — and the
// per-entry combine accumulates in float64 in partition-block order, so
// assembled Grams (and therefore scores) are bit-identical at every worker
// count, matching the reference backend's parallel-equivalence contract.
package engine

import (
	"math"
	"strconv"
	"sync"

	"repro/internal/kernel"
	"repro/internal/partition"
)

// Dense32 memoizes per-block float32 Gram matrices for one fixed dataset
// and block-kernel factory. Safe for concurrent use; cached matrices are
// shared read-only and must be combined into a separate output buffer.
type Dense32 struct {
	x       [][]float64
	factory kernel.BlockKernelFactory
	limit   int

	mu sync.RWMutex
	// order tracks insertion order of the Gram map's keys for FIFO
	// eviction once limit is exceeded.
	order []string
	m     map[string]*M32
	// xm caches the contiguous float32 column blocks feeding the
	// vectorized routines — the dataset is narrowed to f32 once per block,
	// not per candidate.
	xm map[string]*M32
}

// NewDense32 returns a float32 block-Gram cache over dataset rows x using
// factory to build each block kernel. limit follows
// kernel.NewBlockGramCache: 0 selects kernel.DefaultGramCacheBlocks,
// negative disables retention (every block is recomputed).
func NewDense32(x [][]float64, factory kernel.BlockKernelFactory, limit int) *Dense32 {
	if limit == 0 {
		limit = kernel.DefaultGramCacheBlocks
	}
	return &Dense32{
		x: x, factory: factory, limit: limit,
		m:  map[string]*M32{},
		xm: map[string]*M32{},
	}
}

// blockMatrix returns the contiguous float32 column block of the given
// 0-based feature indices, extracting and caching it on first use.
func (c *Dense32) blockMatrix(feats []int) *M32 {
	key := blockKey32(feats)
	c.mu.RLock()
	sub, ok := c.xm[key]
	c.mu.RUnlock()
	if ok {
		return sub
	}
	sub = NewM32(len(c.x), len(feats))
	for i, r := range c.x {
		dstRow := sub.Data[i*len(feats) : (i+1)*len(feats)]
		for k, f := range feats {
			dstRow[k] = float32(r[f])
		}
	}
	c.mu.Lock()
	if prev, ok := c.xm[key]; ok {
		sub = prev
	} else if len(c.xm) < c.limit {
		c.xm[key] = sub
	}
	c.mu.Unlock()
	return sub
}

// blockKey32 fingerprints a block by its sorted 0-based feature indices —
// the same canonical key format as the float64 cache.
func blockKey32(feats []int) string {
	buf := make([]byte, 0, 4*len(feats))
	for i, f := range feats {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(f), 10)
	}
	return string(buf)
}

// BlockGram returns the float32 Gram matrix of the block kernel on the
// given 0-based feature indices, computing and caching it on first use.
// The returned matrix is shared and must not be mutated.
func (c *Dense32) BlockGram(feats []int) *M32 {
	return c.blockGram([]byte(blockKey32(feats)), feats)
}

// blockGram is BlockGram keyed by a caller-owned byte fingerprint, so the
// hot cache-hit path allocates nothing (the no-alloc map[string] byte-slice
// lookup, as in kernel.BlockGramCache.blockGram).
func (c *Dense32) blockGram(key []byte, feats []int) *M32 {
	c.mu.RLock()
	g, ok := c.m[string(key)]
	c.mu.RUnlock()
	if ok {
		return g
	}
	// Compute outside the lock on a private copy of feats (factories retain
	// their feature slice; feats may be caller-reused scratch). Racing
	// workers compute identical blocks and the first store wins.
	feats = append([]int(nil), feats...)
	g = c.computeBlock(c.factory(feats), feats)
	c.mu.Lock()
	if prev, ok := c.m[string(key)]; ok {
		g = prev
	} else if c.limit > 0 {
		ks := string(key)
		c.m[ks] = g
		c.order = append(c.order, ks)
		for len(c.order) > 1 && len(c.m) > c.limit {
			old := c.order[0]
			c.order = c.order[1:]
			delete(c.m, old)
		}
	}
	c.mu.Unlock()
	return g
}

// computeBlock builds one block's float32 Gram: the elementary kernels run
// natively in f32 storage / f64 accumulation over the cached float32
// column block; kernels without a native f32 routine fall back to the
// scalar float64 reference and truncate once per entry — still within the
// tolerance contract, just without the memory-traffic win.
func (c *Dense32) computeBlock(base kernel.Kernel, feats []int) *M32 {
	out := NewM32(len(c.x), len(c.x))
	if c.gramInto32(out, base, feats) {
		return out
	}
	g := kernel.GramPairwise(kernel.Subspace{Base: base, Features: feats}, c.x)
	return From64(out, g)
}

// gramInto32 fills dst with the block kernel's Gram through the native f32
// routines, reporting false (dst unspecified) when the kernel type has no
// native path.
func (c *Dense32) gramInto32(dst *M32, k kernel.Kernel, feats []int) bool {
	switch kk := k.(type) {
	case kernel.Linear:
		Syrk32(dst, c.blockMatrix(feats))
		return true
	case kernel.Polynomial:
		x := c.blockMatrix(feats)
		Syrk32(dst, x)
		n := x.Rows
		deg := float64(kk.Degree)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := float32(math.Pow(kk.Gamma*float64(dst.Data[i*n+j])+kk.Coef0, deg))
				dst.Data[i*n+j] = v
				dst.Data[j*n+i] = v
			}
		}
		return true
	case kernel.RBF:
		x := c.blockMatrix(feats)
		PairwiseSquaredDistances32(dst, x)
		n := x.Rows
		for i := 0; i < n; i++ {
			dst.Data[i*n+i] = 1
			for j := i + 1; j < n; j++ {
				v := float32(math.Exp(-kk.Gamma * float64(dst.Data[i*n+j])))
				dst.Data[i*n+j] = v
				dst.Data[j*n+i] = v
			}
		}
		return true
	case kernel.Normalized:
		if !c.gramInto32(dst, kk.Base, feats) {
			return false
		}
		n := dst.Rows
		diag := make([]float64, n)
		for i := 0; i < n; i++ {
			diag[i] = float64(dst.Data[i*n+i])
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := float32(0)
				if diag[i] > 0 && diag[j] > 0 {
					v = float32(float64(dst.Data[i*n+j]) / math.Sqrt(diag[i]*diag[j]))
				}
				dst.Data[i*n+j] = v
				dst.Data[j*n+i] = v
			}
		}
		return true
	default:
		return false
	}
}

// Scratch32 holds the reusable per-caller buffers of
// GramForPartitionScratch. The zero value is ready; a scratch belongs to
// one goroutine — each worker evaluator owns its own while sharing the
// concurrency-safe cache.
type Scratch32 struct {
	feats  []int
	keyBuf []byte
	grams  []*M32
}

// GramForPartitionScratch assembles the full float32 Gram of the
// multiple-kernel configuration induced by p from the cached per-block
// Grams, writing into out (reshaped) and returning it. Blocks are combined
// in partition.Blocks() order with float64 per-entry accumulation —
// weighted sum with weight 1/numBlocks, or product — mirroring the float64
// cache's assembly so the two backends differ only by f32 rounding.
//
//iotml:hotpath
func (c *Dense32) GramForPartitionScratch(p partition.Partition, combiner kernel.Combiner, out *M32, sc *Scratch32) *M32 {
	n := len(c.x)
	out = Reshape32(out, n, n)
	d := p.N()
	sc.grams = sc.grams[:0]
	for b := 0; b < p.NumBlocks(); b++ {
		sc.feats = sc.feats[:0]
		for e := 1; e <= d; e++ {
			if p.BlockOf(e) == b {
				sc.feats = append(sc.feats, e-1)
			}
		}
		sc.keyBuf = sc.keyBuf[:0]
		for i, f := range sc.feats {
			if i > 0 {
				sc.keyBuf = append(sc.keyBuf, ',')
			}
			sc.keyBuf = strconv.AppendInt(sc.keyBuf, int64(f), 10)
		}
		sc.grams = append(sc.grams, c.blockGram(sc.keyBuf, sc.feats))
	}
	grams := sc.grams
	if combiner == kernel.CombineProduct {
		for i := 0; i < n*n; i++ {
			acc := 1.0
			for _, g := range grams {
				acc *= float64(g.Data[i])
			}
			out.Data[i] = float32(acc)
		}
		return out
	}
	w := 1 / float64(len(grams))
	for i := 0; i < n*n; i++ {
		acc := 0.0
		for _, g := range grams {
			acc += w * float64(g.Data[i])
		}
		out.Data[i] = float32(acc)
	}
	return out
}

// Solver32 is the factor/solve scratch of the Float32 backend: one ridge
// system per CV fold, reusing the float32 regularized-Gram, Cholesky, and
// coefficient buffers across folds and candidates. A Solver32 belongs to
// one goroutine.
type Solver32 struct {
	kreg, chol *M32
	rhs, beta  []float32
}

// RidgeSolve assembles K + diag·I in float32 scratch and factor/solves it,
// mirroring kernelmachine.Ridge.TrainScratch's regularization schedule
// exactly: first λ·n/10, then the heavier 1 + λ·n fallback when the
// Cholesky pivot fails. gram is read-only; the returned coefficients alias
// the solver's scratch and are valid until the next RidgeSolve call.
func (s *Solver32) RidgeSolve(gram *M32, y []int, lambda float64) ([]float32, error) {
	n := len(y)
	s.kreg = Reshape32(s.kreg, n, n)
	if s.chol == nil {
		s.chol = NewM32(n, n)
	}
	assemble := func(diag float64) {
		copy(s.kreg.Data, gram.Data)
		for i := 0; i < n; i++ {
			s.kreg.Data[i*n+i] += float32(diag)
		}
	}
	assemble(lambda * float64(n) / 10)
	if cap(s.rhs) < n {
		s.rhs = make([]float32, n)
	}
	s.rhs = s.rhs[:n]
	for i, v := range y {
		s.rhs[i] = float32(v)
	}
	if err := Cholesky32(s.chol, s.kreg); err != nil {
		// Fall back to a heavier ridge before giving up, as the f64 trainer
		// does.
		assemble(1 + lambda*float64(n))
		if err := Cholesky32(s.chol, s.kreg); err != nil {
			return nil, err
		}
	}
	s.beta = SolveCholesky32(s.beta, s.chol, s.rhs)
	return s.beta, nil
}
