package engine

import (
	"math"
	"testing"

	"repro/internal/kernel"
	"repro/internal/kernelmachine"
	"repro/internal/linalg"
	"repro/internal/partition"
	"repro/internal/stats"
)

func TestParseRoundTripsCanonicalSpellings(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
	}{
		{"exact", Float64},
		{"float64", Float64},
		{"f64", Float64},
		{"f32", Float32},
		{"float32", Float32},
		{"nystrom", Nystrom(0)},
		{"nystrom:256", Nystrom(256)},
		{"rff", RFF(0)},
		{"rff:128", RFF(128)},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// The canonical spelling re-parses to the same backend.
		again, err := Parse(got.String())
		if err != nil || again != got {
			t.Fatalf("Parse(String(%+v)) = %+v, %v", got, again, err)
		}
	}
	if Float64.String() != "exact" || Float32.String() != "f32" || Nystrom(256).String() != "nystrom:256" || RFF(0).String() != "rff" {
		t.Fatalf("unexpected canonical spellings: %q %q %q %q", Float64, Float32, Nystrom(256), RFF(0))
	}
}

func TestParseRejectsBadSpellingsLoudly(t *testing.T) {
	for _, in := range []string{"auto", "bogus", "nystrom:0", "nystrom:-1", "nystrom:x", "exact:5", "f32:8", ""} {
		if _, err := Parse(in); err == nil {
			t.Fatalf("Parse(%q) unexpectedly succeeded", in)
		}
	}
}

func TestZeroBackendIsFloat64(t *testing.T) {
	var b Backend
	if b != Float64 {
		t.Fatalf("zero Backend = %+v, want Float64", b)
	}
	if b.IsApprox() || Float32.IsApprox() {
		t.Fatal("exact backends must not report IsApprox")
	}
	if !Nystrom(8).IsApprox() || !RFF(8).IsApprox() {
		t.Fatal("approx backends must report IsApprox")
	}
}

func TestAutoSelectionTable(t *testing.T) {
	cases := []struct {
		n         int
		alignment bool
		want      Backend
	}{
		{500, false, Float64},
		{1024, false, Float64},
		{1025, false, Float32},
		{4096, false, Float32},
		{4097, false, Nystrom(DefaultAutoRank)},
		{2048, true, Float64},
		{2049, true, Float32},
		{8192, true, Float32},
		{8193, true, Nystrom(DefaultAutoRank)},
	}
	for _, c := range cases {
		if got := Auto(c.n, c.alignment); got != c.want {
			t.Fatalf("Auto(%d, %v) = %v, want %v", c.n, c.alignment, got, c.want)
		}
	}
}

// synthRows builds a deterministic synthetic dataset: n rows, d features.
func synthRows(n, d int, seed int64) [][]float64 {
	rng := stats.NewRNG(seed)
	x := make([][]float64, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
	}
	return x
}

func checkTol32(t *testing.T, name string, got float32, want float64) {
	t.Helper()
	bound := Tol32 * math.Max(1, math.Abs(want))
	if diff := math.Abs(float64(got) - want); diff > bound {
		t.Fatalf("%s: f32 %v vs f64 %v differ by %g (> %g)", name, got, want, diff, bound)
	}
}

func TestDense32GramWithinToleranceOfFloat64Reference(t *testing.T) {
	const n, d = 60, 5
	x := synthRows(n, d, 3)
	parts := []partition.Partition{
		partition.Coarsest(d),
		partition.Finest(d),
		partition.FromRGS([]int{0, 0, 1, 1, 2}),
	}
	factories := map[string]kernel.BlockKernelFactory{
		"rbf":    kernel.RBFFactory(1.0),
		"linear": kernel.LinearFactory(),
		"norm":   kernel.NormalizedFactory(kernel.RBFFactory(0.7)),
		"poly": func(feats []int) kernel.Kernel {
			return kernel.Polynomial{Degree: 2, Gamma: 1 / float64(len(feats)), Coef0: 1}
		},
	}
	for fname, factory := range factories {
		for _, comb := range []kernel.Combiner{kernel.CombineSum, kernel.CombineProduct} {
			c := NewDense32(x, factory, 0)
			var sc Scratch32
			for _, p := range parts {
				got := c.GramForPartitionScratch(p, comb, nil, &sc)
				want := kernel.Gram(kernel.FromPartition(p, factory, comb), x)
				for i := range want.Data {
					checkTol32(t, fname+"/"+p.Key(), got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestDense32FallbackForEvalOnlyKernels(t *testing.T) {
	const n, d = 20, 3
	x := synthRows(n, d, 5)
	// A factory whose kernel type has no native f32 routine: the cache must
	// fall back to the scalar f64 path and truncate.
	factory := func(feats []int) kernel.Kernel { return evalOnly{gamma: 1 / float64(len(feats))} }
	c := NewDense32(x, factory, 0)
	var sc Scratch32
	p := partition.Coarsest(d)
	got := c.GramForPartitionScratch(p, kernel.CombineSum, nil, &sc)
	want := kernel.GramPairwise(kernel.FromPartition(p, factory, kernel.CombineSum), x)
	for i := range want.Data {
		checkTol32(t, "fallback", got.Data[i], want.Data[i])
	}
}

// evalOnly is an RBF clone that does not implement BlockGramKernel.
type evalOnly struct{ gamma float64 }

func (k evalOnly) Eval(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		dd := a[i] - b[i]
		s += dd * dd
	}
	return math.Exp(-k.gamma * s)
}

func (k evalOnly) String() string { return "evalOnly" }

func TestDense32BlockCacheReusesAndEvicts(t *testing.T) {
	x := synthRows(10, 4, 7)
	c := NewDense32(x, kernel.RBFFactory(1.0), 2)
	a := c.BlockGram([]int{0, 1})
	if b := c.BlockGram([]int{0, 1}); b != a {
		t.Fatal("expected cache hit to return the stored block")
	}
	c.BlockGram([]int{2})
	c.BlockGram([]int{3}) // evicts {0,1} (FIFO, limit 2)
	if len(c.m) > 2 {
		t.Fatalf("cache holds %d blocks, limit 2", len(c.m))
	}
	// Recomputation after eviction is bit-identical.
	a2 := c.BlockGram([]int{0, 1})
	for i := range a.Data {
		if a.Data[i] != a2.Data[i] {
			t.Fatal("recomputed block differs from original")
		}
	}
	// Negative limit disables retention entirely.
	nc := NewDense32(x, kernel.RBFFactory(1.0), -1)
	nc.BlockGram([]int{0})
	if len(nc.m) != 0 {
		t.Fatal("negative limit must not retain blocks")
	}
}

func TestGather32MatchesGatherInto(t *testing.T) {
	src64 := linalg.FromRows(synthRows(12, 12, 9))
	src32 := From64(nil, src64)
	rows := []int{4, 5, 6, 2, 9, 10}
	cols := linalg.RunsOf([]int{0, 1, 2, 7, 8})
	got := Gather32(nil, src32, rows, cols)
	want := linalg.GatherInto(nil, src64, rows, cols)
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if float64(got.Data[i]) != float64(float32(want.Data[i])) {
			t.Fatalf("entry %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestSolver32MatchesRidgeReferenceWithinTolerance(t *testing.T) {
	const n, d = 50, 4
	x := synthRows(n, d, 11)
	y := make([]int, n)
	for i := range y {
		if x[i][0]+0.3*x[i][1] > 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	gram64 := kernel.Gram(kernel.RBF{Gamma: 0.5}, x)
	gram32 := From64(nil, gram64)

	const lambda = 1e-2
	var s Solver32
	beta32, err := s.RidgeSolve(gram32, y, lambda)
	if err != nil {
		t.Fatalf("RidgeSolve: %v", err)
	}
	model, err := kernelmachine.Ridge{Lambda: lambda}.TrainScratch(gram64, y, &kernelmachine.Scratch{})
	if err != nil {
		t.Fatalf("TrainScratch: %v", err)
	}
	scores32 := Scores32Into(nil, gram32, beta32)
	scores64 := model.Scores(gram64)
	for i := range scores64 {
		if diff := math.Abs(scores32[i] - scores64[i]); diff > 1e-3*math.Max(1, math.Abs(scores64[i])) {
			t.Fatalf("score %d: f32 %v vs f64 %v (diff %g)", i, scores32[i], scores64[i], diff)
		}
	}
}

func TestSolver32HeavierRidgeFallback(t *testing.T) {
	// A rank-1 Gram with a tiny lambda: the first assembly's diagonal bump
	// (λ·n/10) vanishes in float32, the Cholesky pivot fails, and the
	// heavier 1+λ·n fallback must rescue the solve — the same schedule as
	// kernelmachine.Ridge.
	const n = 8
	gram := NewM32(n, n)
	for i := range gram.Data {
		gram.Data[i] = 1
	}
	y := make([]int, n)
	for i := range y {
		y[i] = 1 - 2*(i%2)
	}
	var s Solver32
	beta, err := s.RidgeSolve(gram, y, 1e-9)
	if err != nil {
		t.Fatalf("RidgeSolve with fallback: %v", err)
	}
	for _, b := range beta {
		if math.IsNaN(float64(b)) || math.IsInf(float64(b), 0) {
			t.Fatalf("non-finite coefficient %v", b)
		}
	}
}

func TestCenterAndAlignment32MatchFloat64WithinTolerance(t *testing.T) {
	const n, d = 40, 4
	x := synthRows(n, d, 13)
	y := make([]int, n)
	for i := range y {
		if x[i][0] > 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	g64 := kernel.Gram(kernel.RBF{Gamma: 0.5}, x)
	g32 := From64(nil, g64)

	kernel.Center(g64)
	Center32(g32)
	for i := range g64.Data {
		checkTol32(t, "center", g32.Data[i], g64.Data[i])
	}
	a64 := kernel.Alignment(g64, y)
	a32 := Alignment32(g32, y)
	if diff := math.Abs(a32 - a64); diff > 5e-4 {
		t.Fatalf("alignment: f32 %v vs f64 %v (diff %g)", a32, a64, diff)
	}
}

func TestCholesky32SolvesSPDSystem(t *testing.T) {
	const n = 6
	// A = B·Bᵀ + I is SPD.
	b64 := linalg.FromRows(synthRows(n, n, 17))
	a64 := linalg.SyrkInto(nil, b64)
	a64.AddScaledDiag(1)
	a32 := From64(nil, a64)

	var l M32
	if err := Cholesky32(&l, a32); err != nil {
		t.Fatalf("Cholesky32: %v", err)
	}
	rhs := make([]float32, n)
	for i := range rhs {
		rhs[i] = float32(i + 1)
	}
	sol := SolveCholesky32(nil, &l, rhs)
	// Verify A·sol ≈ rhs.
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += float64(a32.At(i, j)) * float64(sol[j])
		}
		if diff := math.Abs(s - float64(rhs[i])); diff > 1e-3*math.Max(1, math.Abs(float64(rhs[i]))) {
			t.Fatalf("residual %d: A·x = %v, want %v", i, s, rhs[i])
		}
	}
	// The strict upper triangle of the factor is zeroed.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if l.At(i, j) != 0 {
				t.Fatalf("upper triangle (%d,%d) = %v, want 0", i, j, l.At(i, j))
			}
		}
	}
}
