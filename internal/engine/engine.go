// Package engine defines the pluggable numeric backends of the evaluator:
// which arithmetic carries Gram/cross-Gram assembly into scratch, the
// factor/solve step (Cholesky plus the heavier-ridge fallback), and
// scores-into during candidate scoring.
//
// Three backends exist:
//
//   - Float64 — the bit-identical reference. Every equivalence suite in the
//     repository (vectorized vs pairwise Gram, CV fast path vs scalar
//     reference, parallel vs sequential, distributed vs local) is stated
//     against this backend, and it is the zero value: a Config that never
//     mentions backends gets it.
//   - Float32 — the fast path: f32 storage for column blocks, per-block
//     Grams, Cholesky factors, and coefficients, with every inner loop
//     accumulating in float64 (SYRK/GEMM-style dot products, distance
//     expansions, substitutions). Halving the memory traffic of the
//     Gram-bound scoring loop is the win; the cost is a bounded elementwise
//     error. Tolerance contract, asserted in CI: assembled Gram entries
//     satisfy |K32 − K64| ≤ 1e-4 · max(1, |K64|) against the Float64
//     reference, and scoring is bit-identical across worker counts (each
//     block Gram is computed by one deterministic routine regardless of
//     which worker computes it first).
//   - Nystrom / RFF — the approximate factor-space backends: candidates are
//     scored on cached low-rank block factors (kernel.ApproxGramCache)
//     instead of materialized Grams, keeping the PR 7 error bounds. Rank 0
//     selects kernel.DefaultApproxRank.
//
// The deployment fit (mkl.TrainDeployed / HoldoutAccuracy) always runs in
// exact float64 whatever backend scored the search, so persisted artifacts
// never carry backend-dependent coefficients.
package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the numeric backends. The zero value is Float64Kind, so a
// zero Backend selects the bit-identical reference path.
type Kind int

const (
	// Float64Kind is the exact float64 reference backend (the default).
	Float64Kind Kind = iota
	// Float32Kind is the f32-storage / f64-accumulation fast backend.
	Float32Kind
	// NystromKind scores on Nyström landmark factors.
	NystromKind
	// RFFKind scores on random-Fourier-feature factors (RBF blocks;
	// Nyström fallback elsewhere).
	RFFKind
)

// Backend selects the numeric backend of one evaluator. It is a plain
// comparable value: configurations, CLI flags, and the distributed-search
// Spec all carry it by value, and the zero Backend is Float64.
type Backend struct {
	Kind Kind
	// Rank is the per-block rank of the approximate kinds (Nyström landmark
	// count or RFF feature count); 0 selects kernel.DefaultApproxRank.
	// Ignored by Float64 and Float32.
	Rank int
}

// Float64 is the exact reference backend — identical to the zero Backend.
var Float64 = Backend{Kind: Float64Kind}

// Float32 is the f32-storage fast backend.
var Float32 = Backend{Kind: Float32Kind}

// Nystrom returns the Nyström backend with the given per-block rank
// (0 selects kernel.DefaultApproxRank).
func Nystrom(rank int) Backend { return Backend{Kind: NystromKind, Rank: rank} }

// RFF returns the random-Fourier-feature backend with the given per-block
// rank (0 selects kernel.DefaultApproxRank).
func RFF(rank int) Backend { return Backend{Kind: RFFKind, Rank: rank} }

// IsApprox reports whether the backend scores on low-rank factors rather
// than materialized Grams (and therefore supports budgeted search).
func (b Backend) IsApprox() bool { return b.Kind == NystromKind || b.Kind == RFFKind }

// String returns the canonical CLI spelling: "exact", "f32",
// "nystrom[:rank]", or "rff[:rank]". Parse round-trips it.
func (b Backend) String() string {
	switch b.Kind {
	case Float32Kind:
		return "f32"
	case NystromKind:
		if b.Rank > 0 {
			return "nystrom:" + strconv.Itoa(b.Rank)
		}
		return "nystrom"
	case RFFKind:
		if b.Rank > 0 {
			return "rff:" + strconv.Itoa(b.Rank)
		}
		return "rff"
	default:
		return "exact"
	}
}

// Parse parses the CLI/Spec spelling of a backend: "exact" (aliases
// "float64", "f64"), "f32" (alias "float32"), and "nystrom[:rank]" /
// "rff[:rank]" with an optional positive per-block rank. "auto" is
// deliberately rejected: automatic selection needs the workload in hand, so
// callers resolve it first (iotml.AutoBackend / engine.Auto) and pass the
// concrete result — a distributed Spec must never carry "auto", or workers
// could resolve it differently than the coordinator.
func Parse(s string) (Backend, error) {
	name, rankStr, hasRank := strings.Cut(s, ":")
	rank := 0
	if hasRank {
		r, err := strconv.Atoi(rankStr)
		if err != nil || r <= 0 {
			return Backend{}, fmt.Errorf("engine: invalid backend rank %q (want a positive integer)", rankStr)
		}
		rank = r
	}
	switch name {
	case "exact", "float64", "f64":
		if hasRank {
			return Backend{}, fmt.Errorf("engine: backend %q takes no rank", name)
		}
		return Float64, nil
	case "f32", "float32":
		if hasRank {
			return Backend{}, fmt.Errorf("engine: backend %q takes no rank", name)
		}
		return Float32, nil
	case "nystrom":
		return Nystrom(rank), nil
	case "rff":
		return RFF(rank), nil
	case "auto":
		return Backend{}, fmt.Errorf("engine: backend \"auto\" must be resolved against a concrete workload first (see iotml.AutoBackend)")
	default:
		return Backend{}, fmt.Errorf("engine: unknown backend %q (want exact, f32, nystrom[:rank], or rff[:rank])", name)
	}
}

// DefaultAutoRank is the per-block rank Auto assigns when it selects an
// approximate backend.
const DefaultAutoRank = 256

// Auto picks a backend from the workload shape — the one-line selection
// facade behind iotml.AutoBackend. n is the training-set size and alignment
// reports whether the objective is kernel-target alignment (cheaper per
// candidate than cross-validated accuracy, so the exact backends stretch
// further):
//
//	objective        n ≤ small    n ≤ medium   larger
//	alignment        Float64      Float32      Nystrom(DefaultAutoRank)
//	                 (≤ 2048)     (≤ 8192)
//	CV accuracy      Float64      Float32      Nystrom(DefaultAutoRank)
//	                 (≤ 1024)     (≤ 4096)
//
// The thresholds keep the exact reference wherever its O(n²) assembly is
// cheap, switch to the f32 fast path while a dense Gram still fits hot
// caches, and hand everything larger to the low-rank engine.
func Auto(n int, alignment bool) Backend {
	small, medium := 1024, 4096
	if alignment {
		small, medium = 2048, 8192
	}
	switch {
	case n <= small:
		return Float64
	case n <= medium:
		return Float32
	default:
		return Nystrom(DefaultAutoRank)
	}
}
