// Float32 numeric primitives: the storage type and the SYRK / distance /
// Cholesky / substitution kernels of the Float32 backend. Storage is
// float32 — halving the memory traffic of the Gram-bound scoring loop is
// the backend's entire win — while every inner accumulation runs in
// float64, so rounding enters only at the final store. This keeps the
// elementwise error of an assembled Gram within the backend's tolerance
// contract (|K32 − K64| ≤ 1e-4 · max(1, |K64|)) instead of compounding
// across n-term sums.
package engine

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Tol32 is the Float32 backend's documented elementwise tolerance contract
// against the Float64 reference: every assembled Gram entry satisfies
// |K32 − K64| ≤ Tol32 · max(1, |K64|). The equivalence suites assert it.
const Tol32 = 1e-4

// M32 is a dense row-major float32 matrix — the storage type of the
// Float32 backend.
type M32 struct {
	Rows, Cols int
	Data       []float32 // len Rows*Cols, row-major
}

// NewM32 returns a zero float32 matrix of the given shape.
func NewM32(rows, cols int) *M32 {
	if rows < 0 || cols < 0 {
		panic("engine: negative matrix dimension")
	}
	return &M32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// At returns element (i, j).
func (m *M32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *M32) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Reshape32 returns m resized to r×c, reusing m's backing storage whenever
// its capacity suffices — the float32 twin of linalg.Reshape. Contents
// after a reshape are unspecified.
func Reshape32(m *M32, r, c int) *M32 {
	if r < 0 || c < 0 {
		panic("engine: negative matrix dimension")
	}
	if m == nil {
		return NewM32(r, c)
	}
	if m.Rows == r && m.Cols == c {
		return m
	}
	if cap(m.Data) < r*c {
		return NewM32(r, c)
	}
	m.Rows, m.Cols, m.Data = r, c, m.Data[:r*c]
	return m
}

// From64 widens-then-truncates a float64 matrix into dst (reshaped) and
// returns it: one float32 rounding per entry.
func From64(dst *M32, src *linalg.Matrix) *M32 {
	dst = Reshape32(dst, src.Rows, src.Cols)
	for i, v := range src.Data {
		dst.Data[i] = float32(v)
	}
	return dst
}

// Widen converts a float32 matrix into the float64 matrix dst (reshaped via
// linalg.Reshape) and returns it — exact, float32 embeds in float64.
func Widen(dst *linalg.Matrix, src *M32) *linalg.Matrix {
	dst = linalg.Reshape(dst, src.Rows, src.Cols)
	for i, v := range src.Data {
		dst.Data[i] = float64(v)
	}
	return dst
}

// Syrk32 computes X·Xᵀ over float32 rows with float64 accumulation,
// writing float32 results into dst (reshaped) and returning it. Upper
// triangle computed, lower mirrored — the f32 twin of linalg.SyrkInto.
func Syrk32(dst, x *M32) *M32 {
	n, d := x.Rows, x.Cols
	dst = Reshape32(dst, n, n)
	for i := 0; i < n; i++ {
		ri := x.Data[i*d : (i+1)*d]
		for j := i; j < n; j++ {
			rj := x.Data[j*d : (j+1)*d]
			s := 0.0
			for k, v := range ri {
				s += float64(v) * float64(rj[k])
			}
			f := float32(s)
			dst.Data[i*n+j] = f
			dst.Data[j*n+i] = f
		}
	}
	return dst
}

// PairwiseSquaredDistances32 computes ‖xᵢ − xⱼ‖² for all row pairs via the
// ‖xᵢ‖² + ‖xⱼ‖² − 2⟨xᵢ,xⱼ⟩ expansion with float64 accumulation, writing
// float32 results into dst (reshaped) and returning it. Cancellation
// residue is clamped at zero and the diagonal is exactly zero.
func PairwiseSquaredDistances32(dst, x *M32) *M32 {
	n, d := x.Rows, x.Cols
	dst = Reshape32(dst, n, n)
	norms := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for _, v := range x.Data[i*d : (i+1)*d] {
			s += float64(v) * float64(v)
		}
		norms[i] = s
	}
	for i := 0; i < n; i++ {
		ri := x.Data[i*d : (i+1)*d]
		dst.Data[i*n+i] = 0
		for j := i + 1; j < n; j++ {
			rj := x.Data[j*d : (j+1)*d]
			dot := 0.0
			for k, v := range ri {
				dot += float64(v) * float64(rj[k])
			}
			v := norms[i] + norms[j] - 2*dot
			if v < 0 {
				v = 0
			}
			f := float32(v)
			dst.Data[i*n+j] = f
			dst.Data[j*n+i] = f
		}
	}
	return dst
}

// Gather32 extracts the submatrix src[rows[i]][cols...] into dst (reshaped)
// and returns it — the float32 twin of linalg.GatherInto, consuming the
// same precomputed run descriptors (linalg.RunsOf) as the CV fast path.
func Gather32(dst, src *M32, rows []int, cols []linalg.Run) *M32 {
	nc := 0
	for _, r := range cols {
		nc += r.Len
	}
	dst = Reshape32(dst, len(rows), nc)
	for i, r := range rows {
		srcRow := src.Data[r*src.Cols : (r+1)*src.Cols]
		dstRow := dst.Data[i*nc : (i+1)*nc]
		pos := 0
		for _, run := range cols {
			if run.Len == 1 {
				dstRow[pos] = srcRow[run.Start]
				pos++
				continue
			}
			copy(dstRow[pos:pos+run.Len], srcRow[run.Start:run.Start+run.Len])
			pos += run.Len
		}
	}
	return dst
}

// Cholesky32 factors A = L·Lᵀ into the caller-owned float32 matrix l
// (reshaped), accumulating every subtraction in float64 and rounding each
// factor entry once at its store. The pivot tolerance is 1e-7 — scaled to
// float32 precision the way linalg.CholeskyInto's 1e-14 is scaled to
// float64 — and a failing pivot returns linalg.ErrSingular so the
// heavier-ridge fallback schedule composes identically to the f64 path.
// l must not alias a; its contents are unspecified after an error.
func Cholesky32(l, a *M32) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("engine: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	*l = *Reshape32(l, n, n)
	for j := 0; j < n; j++ {
		rowJ := l.Data[j*n : (j+1)*n]
		d := float64(a.Data[j*n+j])
		for _, v := range rowJ[:j] {
			d -= float64(v) * float64(v)
		}
		if d <= 1e-7 {
			return linalg.ErrSingular
		}
		rowJ[j] = float32(math.Sqrt(d))
		piv := float64(rowJ[j])
		for i := j + 1; i < n; i++ {
			rowI := l.Data[i*n : (i+1)*n]
			s := float64(a.Data[i*n+j])
			for k, v := range rowI[:j] {
				s -= float64(v) * float64(rowJ[k])
			}
			rowI[j] = float32(s / piv)
		}
		for i := j + 1; i < n; i++ {
			rowJ[i] = 0
		}
	}
	return nil
}

// SolveCholesky32 solves A·x = b given the float32 Cholesky factor L of A,
// by forward then backward substitution with float64 accumulation, writing
// the float32 solution into dst (capacity-reused) and returning it.
// dst must not alias b.
func SolveCholesky32(dst []float32, l *M32, b []float32) []float32 {
	n := l.Rows
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		s := float64(b[i])
		for k := 0; k < i; k++ {
			s -= float64(l.Data[i*n+k]) * float64(dst[k])
		}
		dst[i] = float32(s / float64(l.Data[i*n+i]))
	}
	for i := n - 1; i >= 0; i-- {
		s := float64(dst[i])
		for k := i + 1; k < n; k++ {
			s -= float64(l.Data[k*n+i]) * float64(dst[k])
		}
		dst[i] = float32(s / float64(l.Data[i*n+i]))
	}
	return dst
}

// Scores32Into computes cross·coeff — the scores-into step of the Float32
// backend — accumulating each row dot product in float64 and writing
// float64 scores into dst (capacity-reused), so downstream classification
// and accuracy run on the same score type as every other backend.
func Scores32Into(dst []float64, cross *M32, coeff []float32) []float64 {
	if cross.Cols != len(coeff) {
		panic(fmt.Sprintf("engine: Scores32 shape mismatch (%dx%d)*%d", cross.Rows, cross.Cols, len(coeff)))
	}
	if cap(dst) < cross.Rows {
		dst = make([]float64, cross.Rows)
	}
	dst = dst[:cross.Rows]
	d := cross.Cols
	for i := 0; i < cross.Rows; i++ {
		row := cross.Data[i*d : (i+1)*d]
		s := 0.0
		for k, v := range row {
			s += float64(v) * float64(coeff[k])
		}
		dst[i] = s
	}
	return dst
}

// Center32 applies the feature-space centering transform
// K' = K − 1K/n − K1/n + 1K1/n² in place, with the row means and total
// accumulated in float64 — the f32 twin of kernel.Center.
func Center32(g *M32) {
	n := g.Rows
	if n == 0 {
		return
	}
	rowMean := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		s := 0.0
		for _, v := range g.Data[i*n : (i+1)*n] {
			s += float64(v)
		}
		rowMean[i] = s / float64(n)
		total += s
	}
	total /= float64(n * n)
	for i := 0; i < n; i++ {
		row := g.Data[i*n : (i+1)*n]
		for j := range row {
			row[j] = float32(float64(row[j]) - rowMean[i] - rowMean[j] + total)
		}
	}
}

// Alignment32 returns the centered kernel-target alignment
// ⟨K, yyᵀ⟩_F / (‖K‖_F · ‖yyᵀ‖_F) of a (pre-centered) float32 Gram against
// ±1 labels, accumulating in float64 — the f32 twin of kernel.Alignment.
func Alignment32(g *M32, y []int) float64 {
	n := g.Rows
	if n == 0 || len(y) != n {
		return 0
	}
	var kyy, kk float64
	for i := 0; i < n; i++ {
		row := g.Data[i*n : (i+1)*n]
		for j, f := range row {
			v := float64(f)
			kyy += v * float64(y[i]*y[j])
			kk += v * v
		}
	}
	if kk <= 0 {
		return 0
	}
	return kyy / (math.Sqrt(kk) * float64(n))
}
