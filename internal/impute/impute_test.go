package impute

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func grid(vals [][]float64, miss [][2]int) ([][]float64, [][]bool) {
	x := make([][]float64, len(vals))
	mask := make([][]bool, len(vals))
	for i := range vals {
		x[i] = append([]float64(nil), vals[i]...)
		mask[i] = make([]bool, len(vals[i]))
	}
	for _, m := range miss {
		mask[m[0]][m[1]] = true
		x[m[0]][m[1]] = 0
	}
	return x, mask
}

func TestMeanImputation(t *testing.T) {
	x, mask := grid([][]float64{{1, 10}, {3, 20}, {5, 30}}, [][2]int{{1, 0}})
	n, err := Mean{}.Impute(x, mask)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("filled = %d, want 1", n)
	}
	if x[1][0] != 3 { // mean of 1, 5
		t.Errorf("imputed = %v, want 3", x[1][0])
	}
	if x[0][0] != 1 || x[2][1] != 30 {
		t.Error("observed cells modified")
	}
}

func TestMedianImputation(t *testing.T) {
	x, mask := grid([][]float64{{1}, {2}, {100}, {0}}, [][2]int{{3, 0}})
	if _, err := (Median{}).Impute(x, mask); err != nil {
		t.Fatal(err)
	}
	if x[3][0] != 2 { // median of 1, 2, 100
		t.Errorf("imputed = %v, want 2", x[3][0])
	}
}

func TestModeImputation(t *testing.T) {
	x, mask := grid([][]float64{{1}, {1}, {2}, {0}}, [][2]int{{3, 0}})
	if _, err := (Mode{}).Impute(x, mask); err != nil {
		t.Fatal(err)
	}
	if x[3][0] != 1 {
		t.Errorf("imputed = %v, want 1", x[3][0])
	}
}

func TestHotDeckUsesNearestRow(t *testing.T) {
	// Row 2 is nearest to row 0 on the observed column; its missing cell
	// should take row 0's value.
	x, mask := grid([][]float64{
		{0, 100},
		{10, 200},
		{0.1, 0},
	}, [][2]int{{2, 1}})
	if _, err := (HotDeck{}).Impute(x, mask); err != nil {
		t.Fatal(err)
	}
	if x[2][1] != 100 {
		t.Errorf("hot-deck imputed %v, want 100 (nearest donor)", x[2][1])
	}
}

func TestKNNAveragesDonors(t *testing.T) {
	x, mask := grid([][]float64{
		{0, 10},
		{0.1, 20},
		{5, 999},
		{0.05, 0},
	}, [][2]int{{3, 1}})
	if _, err := (KNN{K: 2}).Impute(x, mask); err != nil {
		t.Fatal(err)
	}
	if x[3][1] != 15 { // mean of two nearest donors 10, 20
		t.Errorf("knn imputed %v, want 15", x[3][1])
	}
}

func TestKNNFallsBackToColumnMean(t *testing.T) {
	// Single row: no donors at all.
	x, mask := grid([][]float64{{1, 0}}, [][2]int{{0, 1}})
	if _, err := (KNN{}).Impute(x, mask); err != nil {
		t.Fatal(err)
	}
	if x[0][1] != 0 { // empty column mean = 0
		t.Errorf("fallback = %v, want 0", x[0][1])
	}
}

func TestRegressionImputesLinearStructure(t *testing.T) {
	// Column 0 = 2 * column 1 exactly; regression should recover it.
	x, mask := grid([][]float64{
		{2, 1},
		{4, 2},
		{6, 3},
		{8, 4},
		{0, 5},
	}, [][2]int{{4, 0}})
	if _, err := (Regression{}).Impute(x, mask); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[4][0]-10) > 1e-9 {
		t.Errorf("regression imputed %v, want 10", x[4][0])
	}
}

func TestRegressionFallsBackWithoutPredictor(t *testing.T) {
	// Too few co-observed rows for a fit: falls back to the column mean.
	x, mask := grid([][]float64{{1, 5}, {3, 0}}, [][2]int{{1, 1}})
	if _, err := (Regression{}).Impute(x, mask); err != nil {
		t.Fatal(err)
	}
	if x[1][1] != 5 {
		t.Errorf("fallback = %v, want column mean 5", x[1][1])
	}
}

func TestValidationErrors(t *testing.T) {
	for _, im := range []Imputer{Mean{}, Median{}, Mode{}, HotDeck{}, KNN{}, Regression{}} {
		if _, err := im.Impute([][]float64{{1}}, [][]bool{}); err == nil {
			t.Errorf("%v: row count mismatch accepted", im)
		}
		if _, err := im.Impute([][]float64{{1}}, [][]bool{{true, false}}); err == nil {
			t.Errorf("%v: cell count mismatch accepted", im)
		}
		if n, err := im.Impute(nil, nil); err != nil || n != 0 {
			t.Errorf("%v: empty input should be a no-op, got n=%d err=%v", im, n, err)
		}
	}
}

func TestImputersPreserveObservedCellsProperty(t *testing.T) {
	imputers := []Imputer{Mean{}, Median{}, Mode{}, HotDeck{}, KNN{K: 2}, Regression{}}
	f := func(seed uint32, which uint8) bool {
		rng := stats.NewRNG(int64(seed))
		n, d := 3+rng.Intn(10), 2+rng.Intn(4)
		x := make([][]float64, n)
		mask := make([][]bool, n)
		orig := make([][]float64, n)
		for i := 0; i < n; i++ {
			x[i] = make([]float64, d)
			mask[i] = make([]bool, d)
			for j := 0; j < d; j++ {
				x[i][j] = rng.NormFloat64() * 3
				mask[i][j] = rng.Float64() < 0.3
				if mask[i][j] {
					x[i][j] = 0
				}
			}
			orig[i] = append([]float64(nil), x[i]...)
		}
		im := imputers[int(which)%len(imputers)]
		filled, err := im.Impute(x, mask)
		if err != nil {
			return false
		}
		wantFilled := 0
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				if mask[i][j] {
					wantFilled++
					if math.IsNaN(x[i][j]) || math.IsInf(x[i][j], 0) {
						return false
					}
				} else if x[i][j] != orig[i][j] {
					return false // observed cell modified
				}
			}
		}
		return filled == wantFilled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestImputationQualityOrderingOnStructuredData(t *testing.T) {
	// On strongly correlated columns, KNN and regression should beat the
	// column mean in RMSE against ground truth.
	rng := stats.NewRNG(42)
	n := 200
	truth := make([][]float64, n)
	for i := range truth {
		base := rng.NormFloat64() * 2
		truth[i] = []float64{base, 2 * base, -base + rng.NormFloat64()*0.1}
	}
	rmseFor := func(im Imputer) float64 {
		x := make([][]float64, n)
		mask := make([][]bool, n)
		rng2 := stats.NewRNG(7)
		var predCells []float64
		var truthCells []float64
		for i := range truth {
			x[i] = append([]float64(nil), truth[i]...)
			mask[i] = make([]bool, 3)
			for j := 0; j < 3; j++ {
				if rng2.Float64() < 0.2 {
					mask[i][j] = true
					x[i][j] = 0
				}
			}
		}
		if _, err := im.Impute(x, mask); err != nil {
			t.Fatal(err)
		}
		for i := range truth {
			for j := 0; j < 3; j++ {
				if mask[i][j] {
					predCells = append(predCells, x[i][j])
					truthCells = append(truthCells, truth[i][j])
				}
			}
		}
		return stats.RMSE(predCells, truthCells)
	}
	meanErr := rmseFor(Mean{})
	knnErr := rmseFor(KNN{K: 3})
	regErr := rmseFor(Regression{})
	if knnErr >= meanErr {
		t.Errorf("KNN RMSE %v should beat mean %v on correlated data", knnErr, meanErr)
	}
	if regErr >= meanErr {
		t.Errorf("regression RMSE %v should beat mean %v on correlated data", regErr, meanErr)
	}
}

func TestInterpolateColumnsBasic(t *testing.T) {
	times := []float64{0, 1, 2, 3}
	x, mask := grid([][]float64{{10}, {0}, {0}, {40}}, [][2]int{{1, 0}, {2, 0}})
	n, err := InterpolateColumns(times, x, mask)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("filled = %d, want 2", n)
	}
	if x[1][0] != 20 || x[2][0] != 30 {
		t.Errorf("interpolated = %v %v, want 20 30", x[1][0], x[2][0])
	}
}

func TestInterpolateColumnsEdgesAndEmpty(t *testing.T) {
	times := []float64{0, 1, 2}
	x, mask := grid([][]float64{{0, 0}, {5, 0}, {0, 0}}, [][2]int{{0, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}})
	if _, err := InterpolateColumns(times, x, mask); err != nil {
		t.Fatal(err)
	}
	// Edges take nearest observation.
	if x[0][0] != 5 || x[2][0] != 5 {
		t.Errorf("edges = %v %v, want 5 5", x[0][0], x[2][0])
	}
	// Fully missing column falls back to 0.
	if x[1][1] != 0 {
		t.Errorf("empty column fill = %v, want 0", x[1][1])
	}
}

func TestInterpolateColumnsNonuniformTimes(t *testing.T) {
	times := []float64{0, 3, 4}
	x, mask := grid([][]float64{{0}, {0}, {8}}, [][2]int{{1, 0}})
	if _, err := InterpolateColumns(times, x, mask); err != nil {
		t.Fatal(err)
	}
	if x[1][0] != 6 { // 3/4 of the way from 0 to 8
		t.Errorf("interpolated = %v, want 6", x[1][0])
	}
}

func TestInterpolateColumnsValidation(t *testing.T) {
	x, mask := grid([][]float64{{1}, {2}}, nil)
	if _, err := InterpolateColumns([]float64{0}, x, mask); err == nil {
		t.Error("timestamp count mismatch accepted")
	}
	if _, err := InterpolateColumns([]float64{1, 0}, x, mask); err == nil {
		t.Error("unsorted timestamps accepted")
	}
	if n, err := InterpolateColumns(nil, nil, nil); err != nil || n != 0 {
		t.Errorf("empty input should be a no-op: n=%d err=%v", n, err)
	}
}

func TestInterpolateCoincidentTimestamps(t *testing.T) {
	times := []float64{0, 0, 0}
	x, mask := grid([][]float64{{2}, {0}, {6}}, [][2]int{{1, 0}})
	if _, err := InterpolateColumns(times, x, mask); err != nil {
		t.Fatal(err)
	}
	if x[1][0] != 4 { // average of bracketing coincident stamps
		t.Errorf("coincident fill = %v, want 4", x[1][0])
	}
}
