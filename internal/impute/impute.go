// Package impute implements the missing-value imputation operators Section
// IV singles out as "among the preprocessing operations that are most
// critical to the subsequent analytics": column statistics (mean, median,
// mode), hot-deck, k-nearest-neighbour, and regression imputation.
//
// All imputers share one interface over a value matrix plus missingness
// mask, so the pipeline and the adversarial players can swap strategies.
package impute

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Imputer fills missing cells of x (marked by mask) in place and returns
// the number of cells filled. Implementations must leave observed cells
// untouched.
type Imputer interface {
	Impute(x [][]float64, mask [][]bool) (int, error)
	String() string
}

func validate(x [][]float64, mask [][]bool) error {
	if len(x) != len(mask) {
		return fmt.Errorf("impute: %d data rows but %d mask rows", len(x), len(mask))
	}
	for i := range x {
		if len(x[i]) != len(mask[i]) {
			return fmt.Errorf("impute: row %d has %d values but %d mask cells", i, len(x[i]), len(mask[i]))
		}
	}
	return nil
}

// columnObserved gathers the observed values of column j.
func columnObserved(x [][]float64, mask [][]bool, j int) []float64 {
	var out []float64
	for i := range x {
		if !mask[i][j] {
			out = append(out, x[i][j])
		}
	}
	return out
}

// fillColumnwise applies a per-column statistic to every missing cell.
func fillColumnwise(x [][]float64, mask [][]bool, stat func([]float64) float64) (int, error) {
	if err := validate(x, mask); err != nil {
		return 0, err
	}
	if len(x) == 0 {
		return 0, nil
	}
	filled := 0
	for j := range x[0] {
		obs := columnObserved(x, mask, j)
		v := stat(obs) // statistic of an empty column defaults to 0
		for i := range x {
			if mask[i][j] {
				x[i][j] = v
				filled++
			}
		}
	}
	return filled, nil
}

// Mean imputes column means.
type Mean struct{}

// Impute implements Imputer.
func (Mean) Impute(x [][]float64, mask [][]bool) (int, error) {
	return fillColumnwise(x, mask, stats.Mean)
}

func (Mean) String() string { return "mean" }

// Median imputes column medians.
type Median struct{}

// Impute implements Imputer.
func (Median) Impute(x [][]float64, mask [][]bool) (int, error) {
	return fillColumnwise(x, mask, stats.Median)
}

func (Median) String() string { return "median" }

// Mode imputes column modes (useful for discretized data).
type Mode struct{}

// Impute implements Imputer.
func (Mode) Impute(x [][]float64, mask [][]bool) (int, error) {
	return fillColumnwise(x, mask, stats.Mode)
}

func (Mode) String() string { return "mode" }

// HotDeck fills each missing cell with the value from the nearest observed
// row (distance over the columns both rows observe).
type HotDeck struct{}

func (HotDeck) String() string { return "hotdeck" }

// Impute implements Imputer.
func (HotDeck) Impute(x [][]float64, mask [][]bool) (int, error) {
	return knnFill(x, mask, 1)
}

// KNN fills each missing cell with the mean of the k nearest rows that
// observe that cell.
type KNN struct {
	K int // default 3
}

func (k KNN) String() string { return fmt.Sprintf("knn(k=%d)", k.k()) }

func (k KNN) k() int {
	if k.K <= 0 {
		return 3
	}
	return k.K
}

// Impute implements Imputer.
func (k KNN) Impute(x [][]float64, mask [][]bool) (int, error) {
	return knnFill(x, mask, k.k())
}

// knnFill is the shared nearest-neighbour engine. Distances use only
// co-observed columns, normalized by their count; rows with no co-observed
// column are infinitely far. Cells with no donor fall back to column mean.
func knnFill(x [][]float64, mask [][]bool, k int) (int, error) {
	if err := validate(x, mask); err != nil {
		return 0, err
	}
	n := len(x)
	if n == 0 {
		return 0, nil
	}
	d := len(x[0])
	// Snapshot, so donors are original observations, not freshly imputed
	// values (avoids order-dependent feedback).
	orig := make([][]float64, n)
	for i := range x {
		orig[i] = append([]float64(nil), x[i]...)
	}
	dist := func(a, b int) float64 {
		s, cnt := 0.0, 0
		for j := 0; j < d; j++ {
			if !mask[a][j] && !mask[b][j] {
				diff := orig[a][j] - orig[b][j]
				s += diff * diff
				cnt++
			}
		}
		if cnt == 0 {
			return math.Inf(1)
		}
		return s / float64(cnt)
	}
	colMeans := make([]float64, d)
	for j := 0; j < d; j++ {
		colMeans[j] = stats.Mean(columnObserved(orig, mask, j))
	}
	filled := 0
	for i := 0; i < n; i++ {
		var missing []int
		for j := 0; j < d; j++ {
			if mask[i][j] {
				missing = append(missing, j)
			}
		}
		if len(missing) == 0 {
			continue
		}
		type nb struct {
			row  int
			dist float64
		}
		var nbs []nb
		for r := 0; r < n; r++ {
			if r == i {
				continue
			}
			if dd := dist(i, r); !math.IsInf(dd, 1) {
				nbs = append(nbs, nb{row: r, dist: dd})
			}
		}
		sort.Slice(nbs, func(a, b int) bool { return nbs[a].dist < nbs[b].dist })
		for _, j := range missing {
			var donors []float64
			for _, cand := range nbs {
				if !mask[cand.row][j] {
					donors = append(donors, orig[cand.row][j])
					if len(donors) == k {
						break
					}
				}
			}
			if len(donors) > 0 {
				x[i][j] = stats.Mean(donors)
			} else {
				x[i][j] = colMeans[j]
			}
			filled++
		}
	}
	return filled, nil
}

// Regression imputes each missing cell by a univariate least-squares fit on
// the observed column most correlated with the target column (falling back
// to the column mean when no usable predictor exists).
type Regression struct{}

func (Regression) String() string { return "regression" }

// Impute implements Imputer.
func (Regression) Impute(x [][]float64, mask [][]bool) (int, error) {
	if err := validate(x, mask); err != nil {
		return 0, err
	}
	n := len(x)
	if n == 0 {
		return 0, nil
	}
	d := len(x[0])
	orig := make([][]float64, n)
	for i := range x {
		orig[i] = append([]float64(nil), x[i]...)
	}
	colMeans := make([]float64, d)
	for j := 0; j < d; j++ {
		colMeans[j] = stats.Mean(columnObserved(orig, mask, j))
	}
	// Pairwise correlation on co-observed rows.
	corr := func(a, b int) (slope, intercept, r float64, ok bool) {
		var xs, ys []float64
		for i := 0; i < n; i++ {
			if !mask[i][a] && !mask[i][b] {
				xs = append(xs, orig[i][b])
				ys = append(ys, orig[i][a])
			}
		}
		if len(xs) < 3 {
			return 0, 0, 0, false
		}
		mx, my := stats.Mean(xs), stats.Mean(ys)
		var sxy, sxx, syy float64
		for i := range xs {
			sxy += (xs[i] - mx) * (ys[i] - my)
			sxx += (xs[i] - mx) * (xs[i] - mx)
			syy += (ys[i] - my) * (ys[i] - my)
		}
		if sxx < 1e-12 || syy < 1e-12 {
			return 0, 0, 0, false
		}
		slope = sxy / sxx
		return slope, my - slope*mx, sxy / math.Sqrt(sxx*syy), true
	}
	filled := 0
	for j := 0; j < d; j++ {
		// Pick the best predictor column for target j.
		bestB, bestAbsR := -1, 0.0
		var bestSlope, bestIcpt float64
		for b := 0; b < d; b++ {
			if b == j {
				continue
			}
			slope, icpt, r, ok := corr(j, b)
			if ok && math.Abs(r) > bestAbsR {
				bestB, bestAbsR = b, math.Abs(r)
				bestSlope, bestIcpt = slope, icpt
			}
		}
		for i := 0; i < n; i++ {
			if !mask[i][j] {
				continue
			}
			if bestB >= 0 && !mask[i][bestB] {
				x[i][j] = bestIcpt + bestSlope*orig[i][bestB]
			} else {
				x[i][j] = colMeans[j]
			}
			filled++
		}
	}
	return filled, nil
}

var (
	_ Imputer = Mean{}
	_ Imputer = Median{}
	_ Imputer = Mode{}
	_ Imputer = HotDeck{}
	_ Imputer = KNN{}
	_ Imputer = Regression{}
)

// InterpolateColumns fills missing cells by per-column linear interpolation
// over the row timestamps — the "alignment of data from different
// dimensions, interpolation/extrapolation" preparation task of Section I-B,
// and the natural imputer for records produced by time-stamp merging.
// Rows must be ordered by non-decreasing time. Cells before the first or
// after the last observation take the nearest observed value; columns with
// no observation fall back to 0.
func InterpolateColumns(times []float64, x [][]float64, mask [][]bool) (int, error) {
	if err := validate(x, mask); err != nil {
		return 0, err
	}
	if len(times) != len(x) {
		return 0, fmt.Errorf("impute: %d timestamps for %d rows", len(times), len(x))
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			return 0, fmt.Errorf("impute: timestamps not sorted at row %d", i)
		}
	}
	n := len(x)
	if n == 0 {
		return 0, nil
	}
	d := len(x[0])
	filled := 0
	for j := 0; j < d; j++ {
		// Observed row indices for this column.
		var obs []int
		for i := 0; i < n; i++ {
			if !mask[i][j] {
				obs = append(obs, i)
			}
		}
		for i := 0; i < n; i++ {
			if !mask[i][j] {
				continue
			}
			filled++
			if len(obs) == 0 {
				x[i][j] = 0
				continue
			}
			// Locate the bracketing observations.
			k := sort.Search(len(obs), func(k int) bool { return obs[k] > i })
			switch {
			case k == 0:
				x[i][j] = x[obs[0]][j]
			case k == len(obs):
				x[i][j] = x[obs[len(obs)-1]][j]
			default:
				lo, hi := obs[k-1], obs[k]
				t0, t1 := times[lo], times[hi]
				if t1-t0 < 1e-12 {
					x[i][j] = (x[lo][j] + x[hi][j]) / 2
					continue
				}
				w := (times[i] - t0) / (t1 - t0)
				x[i][j] = (1-w)*x[lo][j] + w*x[hi][j]
			}
		}
	}
	return filled, nil
}
