package combinat

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestStirlingSecondKnownValues(t *testing.T) {
	tests := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1},
		{1, 0, 0},
		{1, 1, 1},
		{4, 1, 1},
		{4, 2, 7},
		{4, 3, 6},
		{4, 4, 1},
		{5, 2, 15},
		{5, 3, 25},
		{6, 3, 90},
		{7, 4, 350},
		{10, 5, 42525},
		{3, 5, 0},
		{-1, 2, 0},
		{4, -1, 0},
	}
	for _, tt := range tests {
		got, ok := StirlingSecondInt64(tt.n, tt.k)
		if !ok {
			t.Fatalf("S(%d,%d) overflowed int64", tt.n, tt.k)
		}
		if got != tt.want {
			t.Errorf("S(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestBellKnownValues(t *testing.T) {
	// OEIS A000110.
	want := []int64{1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975, 678570, 4213597}
	for n, w := range want {
		got, ok := BellInt64(n)
		if !ok {
			t.Fatalf("B(%d) overflowed", n)
		}
		if got != w {
			t.Errorf("B(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestBellLarge(t *testing.T) {
	// B(25) fits in int64, B(26) does not.
	if _, ok := BellInt64(25); !ok {
		t.Error("B(25) should fit in int64")
	}
	if _, ok := BellInt64(26); ok {
		t.Error("B(26) should not fit in int64")
	}
	// B(30) from OEIS.
	want, _ := new(big.Int).SetString("846749014511809332450147", 10)
	if got := Bell(30); got.Cmp(want) != 0 {
		t.Errorf("B(30) = %s, want %s", got, want)
	}
}

func TestBinomialKnownValues(t *testing.T) {
	tests := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{52, 5, 2598960}, {5, 6, 0}, {5, -1, 0},
	}
	for _, tt := range tests {
		got, ok := BinomialInt64(tt.n, tt.k)
		if !ok {
			t.Fatalf("C(%d,%d) overflow", tt.n, tt.k)
		}
		if got != tt.want {
			t.Errorf("C(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestWhitneyPartitionLatticeFigure2(t *testing.T) {
	// Figure 2 of the paper: the lattice of partitions of a 4-element set
	// has level sizes 1, 7, 6, 1 by rank (rank i has 4-i blocks)...
	// wait: rank 0 = finest = 4 blocks = S(4,4) = 1; rank 1 = 3 blocks = 6;
	// rank 2 = 2 blocks = 7; rank 3 = 1 block = 1.
	w := WhitneyPartitionLattice(4)
	want := []int64{1, 6, 7, 1}
	if len(w) != len(want) {
		t.Fatalf("len = %d, want %d", len(w), len(want))
	}
	total := int64(0)
	for i, v := range w {
		if v.Int64() != want[i] {
			t.Errorf("W[%d] = %s, want %d", i, v, want[i])
		}
		total += v.Int64()
	}
	if total != 15 {
		t.Errorf("total partitions of 4-set = %d, want 15 (Bell(4))", total)
	}
}

func TestLatticeAsymmetryClaim(t *testing.T) {
	// Paper: "there are 2^(n-1)-1 partitions of an n-set into two blocks,
	// but only n(n-1)/2 partitions of an n-set into n-1 blocks."
	for n := 3; n <= 20; n++ {
		two := TwoBlockPartitions(n)
		near := NearTopPartitions(n)
		if s := StirlingSecond(n, 2); two.Cmp(s) != 0 {
			t.Errorf("n=%d: TwoBlockPartitions = %s, S(n,2) = %s", n, two, s)
		}
		if s := StirlingSecond(n, n-1); near.Cmp(s) != 0 {
			t.Errorf("n=%d: NearTopPartitions = %s, S(n,n-1) = %s", n, near, s)
		}
		if n >= 3 && two.Cmp(near) <= 0 && n > 4 {
			t.Errorf("n=%d: expected 2^(n-1)-1 > n(n-1)/2 for n > 4", n)
		}
	}
}

func TestCompositionsCountAndOrder(t *testing.T) {
	for n := 0; n <= 10; n++ {
		comps := Compositions(n)
		want := 1
		if n > 0 {
			want = 1 << (n - 1)
		}
		if len(comps) != want {
			t.Errorf("n=%d: %d compositions, want %d", n, len(comps), want)
		}
		seen := map[string]bool{}
		for _, c := range comps {
			sum := 0
			key := ""
			for _, p := range c {
				if p <= 0 {
					t.Fatalf("n=%d: non-positive part in %v", n, c)
				}
				sum += p
				key += string(rune('0' + p))
			}
			if sum != n {
				t.Errorf("n=%d: composition %v sums to %d", n, c, sum)
			}
			if seen[key] {
				t.Errorf("n=%d: duplicate composition %v", n, c)
			}
			seen[key] = true
		}
	}
}

func TestCountPartitionsOfOrderedType(t *testing.T) {
	// Types from Table I of the paper (compositions of 4) and their counts.
	tests := []struct {
		comp []int
		want int64
	}{
		{[]int{1, 1, 1, 1}, 1},
		{[]int{1, 1, 2}, 1},
		{[]int{1, 3}, 1},
		{[]int{4}, 1},
		{[]int{1, 2, 1}, 2},
		{[]int{3, 1}, 3},
		{[]int{2, 1, 1}, 3},
		{[]int{2, 2}, 3},
	}
	total := int64(0)
	for _, tt := range tests {
		got := CountPartitionsOfOrderedType(tt.comp)
		if got.Int64() != tt.want {
			t.Errorf("count(%v) = %s, want %d", tt.comp, got, tt.want)
		}
		total += got.Int64()
	}
	if total != 15 {
		t.Errorf("types of compositions of 4 cover %d partitions, want 15", total)
	}
}

func TestCountPartitionsOfOrderedTypeSumsToBell(t *testing.T) {
	// Summing counts over all compositions of n must give Bell(n): every set
	// partition has a unique min-ordered block-size composition.
	for n := 1; n <= 9; n++ {
		sum := big.NewInt(0)
		for _, comp := range Compositions(n) {
			sum.Add(sum, CountPartitionsOfOrderedType(comp))
		}
		if b := Bell(n); sum.Cmp(b) != 0 {
			t.Errorf("n=%d: sum over types = %s, Bell = %s", n, sum, b)
		}
	}
}

func TestMultinomial(t *testing.T) {
	got, err := Multinomial(4, []int{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 12 {
		t.Errorf("Multinomial(4;2,1,1) = %s, want 12", got)
	}
	if _, err := Multinomial(4, []int{2, 1}); err == nil {
		t.Error("expected error for parts not summing to n")
	}
	if _, err := Multinomial(1, []int{-1, 2}); err == nil {
		t.Error("expected error for negative part")
	}
}

func TestFactorial(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720}
	for n, w := range want {
		if got := Factorial(n); got.Int64() != w {
			t.Errorf("%d! = %s, want %d", n, got, w)
		}
	}
}

func TestStirlingRecurrenceProperty(t *testing.T) {
	// Property: S(n,k) = k*S(n-1,k) + S(n-1,k-1) checked via an independent
	// path: the inclusion-exclusion formula S(n,k) = (1/k!) sum_j (-1)^j C(k,j) (k-j)^n.
	f := func(n8, k8 uint8) bool {
		n := int(n8%12) + 1
		k := int(k8%12) + 1
		if k > n {
			n, k = k, n
		}
		viaIE := big.NewInt(0)
		for j := 0; j <= k; j++ {
			term := new(big.Int).Exp(big.NewInt(int64(k-j)), big.NewInt(int64(n)), nil)
			term.Mul(term, Binomial(k, j))
			if j%2 == 1 {
				term.Neg(term)
			}
			viaIE.Add(viaIE, term)
		}
		viaIE.Div(viaIE, Factorial(k))
		return viaIE.Cmp(StirlingSecond(n, k)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
