// Package combinat provides the combinatorial substrate used throughout the
// repository: binomial coefficients, Stirling numbers of the second kind,
// Bell numbers, Whitney numbers of the partition lattice, and generators for
// integer compositions.
//
// Section III of the paper measures the cost of exhaustively exploring the
// partition lattice in terms of sums of Stirling numbers of the second kind
// (whose totals are Bell numbers), and contrasts it with a chain-based search
// that is linear in the number of features. The functions here provide those
// reference quantities, both as exact big.Int values (any n) and as int64
// convenience values (small n, with explicit overflow reporting).
package combinat

import (
	"fmt"
	"math/big"
)

// Binomial returns C(n, k) as a big.Int. It returns zero for k < 0 or k > n.
func Binomial(n, k int) *big.Int {
	if k < 0 || k > n || n < 0 {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// BinomialInt64 returns C(n, k) as an int64 and reports whether the value
// fits without overflow.
func BinomialInt64(n, k int) (int64, bool) {
	b := Binomial(n, k)
	if !b.IsInt64() {
		return 0, false
	}
	return b.Int64(), true
}

// StirlingSecond returns S(n, k), the number of ways to partition an n-set
// into exactly k nonempty blocks, as a big.Int.
//
// S(0, 0) = 1; S(n, 0) = 0 for n > 0; S(n, k) = 0 for k > n.
func StirlingSecond(n, k int) *big.Int {
	if n < 0 || k < 0 {
		return big.NewInt(0)
	}
	row := StirlingSecondRow(n)
	if k >= len(row) {
		return big.NewInt(0)
	}
	return new(big.Int).Set(row[k])
}

// StirlingSecondRow returns the full row [S(n,0), S(n,1), ..., S(n,n)].
func StirlingSecondRow(n int) []*big.Int {
	row := make([]*big.Int, 1, n+1)
	row[0] = big.NewInt(1) // S(0,0) = 1
	for m := 1; m <= n; m++ {
		next := make([]*big.Int, m+1)
		next[0] = big.NewInt(0)
		for k := 1; k <= m; k++ {
			// S(m, k) = k*S(m-1, k) + S(m-1, k-1)
			t := big.NewInt(0)
			if k < len(row) {
				t.Mul(big.NewInt(int64(k)), row[k])
			}
			t.Add(t, row[k-1])
			next[k] = t
		}
		row = next
	}
	return row
}

// StirlingSecondInt64 returns S(n, k) as an int64 and reports whether it
// fits without overflow.
func StirlingSecondInt64(n, k int) (int64, bool) {
	s := StirlingSecond(n, k)
	if !s.IsInt64() {
		return 0, false
	}
	return s.Int64(), true
}

// Bell returns the n-th Bell number B(n) = sum_k S(n, k), the total number of
// partitions of an n-set, as a big.Int.
func Bell(n int) *big.Int {
	sum := big.NewInt(0)
	for _, s := range StirlingSecondRow(n) {
		sum.Add(sum, s)
	}
	return sum
}

// BellInt64 returns B(n) as an int64 and reports whether it fits. B(25) is
// the largest Bell number representable in an int64.
func BellInt64(n int) (int64, bool) {
	b := Bell(n)
	if !b.IsInt64() {
		return 0, false
	}
	return b.Int64(), true
}

// WhitneyPartitionLattice returns the Whitney numbers (level sizes) of the
// partition lattice Π(S) for |S| = n, indexed by rank: the number of
// partitions of rank i is S(n, n-i), for i = 0..n-1.
//
// These are the level counts the paper's Figure 2 displays for n = 4:
// (1, 6, 7, 1) at ranks 0..3 — note rank i partitions have n-i blocks.
func WhitneyPartitionLattice(n int) []*big.Int {
	if n <= 0 {
		return nil
	}
	row := StirlingSecondRow(n)
	w := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		w[i] = new(big.Int).Set(row[n-i])
	}
	return w
}

// TwoBlockPartitions returns 2^(n-1) - 1, the number of partitions of an
// n-set into exactly two blocks (S(n, 2)). The paper contrasts this count
// with the n(n-1)/2 partitions into n-1 blocks to show the partition lattice
// is not rank-symmetric for n >= 3.
func TwoBlockPartitions(n int) *big.Int {
	if n < 2 {
		return big.NewInt(0)
	}
	v := new(big.Int).Lsh(big.NewInt(1), uint(n-1))
	return v.Sub(v, big.NewInt(1))
}

// NearTopPartitions returns n(n-1)/2, the number of partitions of an n-set
// into exactly n-1 blocks (S(n, n-1)): one pair merged, all else singletons.
func NearTopPartitions(n int) *big.Int {
	if n < 2 {
		return big.NewInt(0)
	}
	return big.NewInt(int64(n) * int64(n-1) / 2)
}

// Compositions returns all compositions (ordered sequences of positive
// integers) of n, in lexicographic order. There are 2^(n-1) of them.
//
// Compositions of n+1 are in bijection with subsets of an n-set via the
// paper's encoding c(S) (see package chains); this generator provides the
// codomain of that bijection for verification.
func Compositions(n int) [][]int {
	if n < 0 {
		return nil
	}
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	comp := []int{}
	var rec func(rem int)
	rec = func(rem int) {
		if rem == 0 {
			out = append(out, append([]int(nil), comp...))
			return
		}
		for first := 1; first <= rem; first++ {
			comp = append(comp, first)
			rec(rem - first)
			comp = comp[:len(comp)-1]
		}
	}
	rec(n)
	return out
}

// CountPartitionsOfOrderedType returns the number of set partitions of
// {1..n} whose blocks, ordered by increasing minimum element, have sizes
// exactly comp (a composition of n).
//
// The count follows the greedy construction: the first block must contain
// the global minimum plus comp[0]-1 of the remaining n-1 elements; the second
// block contains the smallest leftover plus comp[1]-1 of the rest; and so on:
//
//	prod_i C(remaining_i - 1, comp[i] - 1)
func CountPartitionsOfOrderedType(comp []int) *big.Int {
	n := 0
	for _, c := range comp {
		n += c
	}
	count := big.NewInt(1)
	rem := n
	for _, c := range comp {
		count.Mul(count, Binomial(rem-1, c-1))
		rem -= c
	}
	return count
}

// SumStirlingCone returns the number of partitions in the lower cone of a
// two-block partition (K, S-K) of an n-set where |S-K| = m: refining the
// second block in every possible way while keeping K fixed yields B(m)
// partitions. This is the exhaustive search cost of Section III.
func SumStirlingCone(m int) *big.Int { return Bell(m) }

// Factorial returns n! as a big.Int.
func Factorial(n int) *big.Int {
	if n < 0 {
		return big.NewInt(0)
	}
	return new(big.Int).MulRange(1, int64(n))
}

// Multinomial returns n! / (k1! k2! ... km!) for parts summing to n.
// It returns an error if the parts do not sum to n or any part is negative.
func Multinomial(n int, parts []int) (*big.Int, error) {
	sum := 0
	for _, p := range parts {
		if p < 0 {
			return nil, fmt.Errorf("combinat: negative part %d", p)
		}
		sum += p
	}
	if sum != n {
		return nil, fmt.Errorf("combinat: parts sum to %d, want %d", sum, n)
	}
	out := Factorial(n)
	for _, p := range parts {
		out.Div(out, Factorial(p))
	}
	return out, nil
}
