package pipeline

import (
	"math"
	"testing"

	"repro/internal/impute"
	"repro/internal/sensors"
	"repro/internal/stats"
)

func sampleStreams(t *testing.T, desync float64, horizon float64, seed int64) ([]sensors.Stream, []sensors.Device) {
	t.Helper()
	fleet := sensors.EnvironmentalFleet(desync)
	streams, err := sensors.SampleFleet(fleet, horizon, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return streams, fleet
}

func TestFullPipelineRun(t *testing.T) {
	streams, _ := sampleStreams(t, 0.8, 100, 1)
	p := &Pipeline{Stages: []Stage{
		MergeStage{Streams: streams, Tolerance: 0.05},
		CleanStage{ZThreshold: 4},
		ImputeStage{Imputer: impute.KNN{K: 3}, TrackBias: true},
		ReduceStage{Stride: 2},
	}}
	res, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data.MissingFraction() != 0 {
		t.Errorf("missing after imputation = %v, want 0", res.Data.MissingFraction())
	}
	if len(res.Ledger.Entries()) != 4 {
		t.Errorf("ledger entries = %d, want 4", len(res.Ledger.Entries()))
	}
	if !res.Ledger.Veracious() {
		t.Error("fully tracked pipeline should keep the chain of trust")
	}
	if res.Ledger.InfoRetained() >= 1 {
		t.Error("reduce stage should report information loss")
	}
}

func TestUntrackedImputationBreaksTrustChain(t *testing.T) {
	streams, _ := sampleStreams(t, 0.8, 60, 2)
	p := &Pipeline{Stages: []Stage{
		MergeStage{Streams: streams, Tolerance: 0.05},
		ImputeStage{Imputer: impute.Mean{}, TrackBias: false},
	}}
	res, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.Veracious() {
		t.Error("untracked imputation should break the chain")
	}
	if got := res.Ledger.FirstUntracked(); got != "impute/mean" {
		t.Errorf("FirstUntracked = %q", got)
	}
}

func TestDropIncompleteAlternative(t *testing.T) {
	streams, _ := sampleStreams(t, 1.0, 100, 3)
	pImpute := &Pipeline{Stages: []Stage{
		MergeStage{Streams: streams, Tolerance: 0.05},
		ImputeStage{Imputer: impute.Mean{}, TrackBias: true},
	}}
	pDrop := &Pipeline{Stages: []Stage{
		MergeStage{Streams: streams, Tolerance: 0.05},
		DropIncompleteStage{},
	}}
	ri, err := pImpute.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := pDrop.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Imputation keeps every record; dropping loses most under heavy desync.
	if len(rd.Data.X) >= len(ri.Data.X) {
		t.Errorf("drop kept %d records, impute kept %d", len(rd.Data.X), len(ri.Data.X))
	}
	if rd.Ledger.InfoRetained() >= ri.Ledger.InfoRetained() {
		t.Error("dropping should retain less information than imputing")
	}
}

func TestPipelineStageError(t *testing.T) {
	p := &Pipeline{Stages: []Stage{ImputeStage{Imputer: nil}}}
	if _, err := p.Run(&Data{}); err == nil {
		t.Error("nil imputer should fail the run")
	}
	bad := &Pipeline{Stages: []Stage{MergeStage{Streams: nil, Tolerance: 0.1}}}
	if _, err := bad.Run(nil); err == nil {
		t.Error("empty merge should fail the run")
	}
}

func TestReconstructionRMSEImprovesWithInterpolation(t *testing.T) {
	// E12 shape: time-aware interpolation reconstructs the field better
	// than column-mean imputation under desynchronization.
	streams, fleet := sampleStreams(t, 1.0, 300, 4)
	run := func(stage Stage) float64 {
		p := &Pipeline{Stages: []Stage{
			MergeStage{Streams: streams, Tolerance: 0.05},
			stage,
		}}
		res, err := p.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return ReconstructionRMSE(res.Data, fleet)
	}
	meanErr := run(ImputeStage{Imputer: impute.Mean{}, TrackBias: false})
	interpErr := run(InterpolateStage{TrackBias: false})
	if math.IsNaN(meanErr) || math.IsNaN(interpErr) {
		t.Fatal("RMSE returned NaN")
	}
	if interpErr >= meanErr {
		t.Errorf("interpolation RMSE %v should beat mean %v", interpErr, meanErr)
	}
}

func TestInterpolateStageFillsAndTracks(t *testing.T) {
	d := &Data{
		Times: []float64{0, 1, 2},
		X:     [][]float64{{0, 5}, {0, 0}, {2, 7}},
		Mask:  [][]bool{{true, false}, {true, true}, {false, false}},
	}
	out, entry, err := InterpolateStage{TrackBias: true}.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.MissingFraction() != 0 {
		t.Error("interpolation should clear all missing cells")
	}
	if out.X[1][1] != 6 { // midpoint of 5 and 7
		t.Errorf("interpolated = %v, want 6", out.X[1][1])
	}
	if out.X[0][0] != 2 || out.X[1][0] != 2 { // back-fill from only observation
		t.Errorf("edge fill = %v %v, want 2 2", out.X[0][0], out.X[1][0])
	}
	if !entry.Tracked {
		t.Error("TrackBias stage should be tracked")
	}
	if d.MissingFraction() == 0 {
		t.Error("stage mutated its input")
	}
}

func TestCleanStageFlagsInjectedOutlier(t *testing.T) {
	d := &Data{
		X:    [][]float64{{1}, {1.2}, {0.8}, {1.1}, {0.9}, {100}},
		Mask: [][]bool{{false}, {false}, {false}, {false}, {false}, {false}},
	}
	out, entry, err := CleanStage{ZThreshold: 2}.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Mask[5][0] {
		t.Error("outlier not flagged")
	}
	if entry.InfoLost <= 0 {
		t.Error("cleaning should report information loss")
	}
	// Original untouched.
	if d.Mask[5][0] {
		t.Error("stage mutated its input")
	}
}

func TestNormalizeStage(t *testing.T) {
	d := &Data{
		X:    [][]float64{{0, 10}, {10, 20}},
		Mask: [][]bool{{false, false}, {false, false}},
	}
	out, entry, err := NormalizeStage{}.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.X[1][0] != 1 || out.X[0][1] != 0 {
		t.Errorf("normalized = %v", out.X)
	}
	if !entry.Tracked {
		t.Error("normalize should be tracked")
	}
}

func TestReduceStage(t *testing.T) {
	d := &Data{
		Times: []float64{0, 1, 2, 3},
		X:     [][]float64{{1}, {2}, {3}, {4}},
		Mask:  [][]bool{{false}, {false}, {false}, {false}},
	}
	out, entry, err := ReduceStage{Stride: 2}.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.X) != 2 || out.X[1][0] != 3 {
		t.Errorf("reduced = %v", out.X)
	}
	if entry.InfoLost != 0.5 {
		t.Errorf("InfoLost = %v, want 0.5", entry.InfoLost)
	}
}

func TestDataCloneIndependence(t *testing.T) {
	d := &Data{X: [][]float64{{1}}, Mask: [][]bool{{false}}, Times: []float64{0}}
	c := d.Clone()
	c.X[0][0] = 99
	c.Mask[0][0] = true
	if d.X[0][0] != 1 || d.Mask[0][0] {
		t.Error("Clone shares storage with the original")
	}
}

func TestMissingFractionEmpty(t *testing.T) {
	if (&Data{}).MissingFraction() != 0 {
		t.Error("empty data should report 0 missing")
	}
}

func TestInterpolationIntroducesArtificialAutocorrelation(t *testing.T) {
	// Section I-B: preparation can introduce "artificial autocorrelation in
	// time series". A white-noise sensor stream has ≈ 0 lag-1
	// autocorrelation; after heavy thinning and linear interpolation, the
	// reconstructed series is strongly autocorrelated — the tracked ledger
	// is how downstream consumers learn such distortions happened.
	rng := stats.NewRNG(11)
	n := 2000
	d := &Data{
		Times: make([]float64, n),
		X:     make([][]float64, n),
		Mask:  make([][]bool, n),
	}
	for i := 0; i < n; i++ {
		d.Times[i] = float64(i)
		d.X[i] = []float64{rng.NormFloat64()}
		d.Mask[i] = []bool{i%5 != 0} // keep every 5th sample, blank the rest
		if d.Mask[i][0] {
			d.X[i][0] = 0
		}
	}
	var raw []float64
	for i := 0; i < n; i++ {
		if !d.Mask[i][0] {
			raw = append(raw, d.X[i][0])
		}
	}
	out, _, err := InterpolateStage{}.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	recon := make([]float64, n)
	for i := range out.X {
		recon[i] = out.X[i][0]
	}
	acRaw := stats.Autocorrelation(raw, 1)
	acRecon := stats.Autocorrelation(recon, 1)
	if math.Abs(acRaw) > 0.1 {
		t.Fatalf("raw samples lag-1 = %v, want ≈ 0", acRaw)
	}
	if acRecon < 0.5 {
		t.Errorf("interpolated lag-1 = %v, want strongly positive (artificial autocorrelation)", acRecon)
	}
}
