// Package pipeline composes the IoT data path of Figure 1 — acquisition,
// preparation, reduction, analytics — as a chain of services (ref [1] of
// the paper), each stage reporting into an uncertainty ledger so the human
// decision-maker can see exactly where the chain of trust holds or breaks
// (Section I-B: "full visibility and control over distributed preparation
// of input data").
package pipeline

import (
	"fmt"
	"math"

	"repro/internal/impute"
	"repro/internal/preprocess"
	"repro/internal/sensors"
	"repro/internal/stats"
	"repro/internal/uncertainty"
)

// Data is the record batch flowing between stages.
type Data struct {
	Times      []float64
	Quantities []string
	X          [][]float64
	Mask       [][]bool
}

// Clone deep-copies the batch.
func (d *Data) Clone() *Data {
	out := &Data{
		Times:      append([]float64(nil), d.Times...),
		Quantities: append([]string(nil), d.Quantities...),
	}
	for _, r := range d.X {
		out.X = append(out.X, append([]float64(nil), r...))
	}
	for _, r := range d.Mask {
		out.Mask = append(out.Mask, append([]bool(nil), r...))
	}
	return out
}

// MissingFraction returns the fraction of missing cells.
func (d *Data) MissingFraction() float64 {
	if len(d.Mask) == 0 {
		return 0
	}
	miss, tot := 0, 0
	for i := range d.Mask {
		for j := range d.Mask[i] {
			tot++
			if d.Mask[i][j] {
				miss++
			}
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(miss) / float64(tot)
}

// Stage transforms a batch and reports its uncertainty entry.
type Stage interface {
	Name() string
	Apply(d *Data) (*Data, uncertainty.Entry, error)
}

// Pipeline is an ordered stage composition.
type Pipeline struct {
	Stages []Stage
}

// Result carries the final batch and the accumulated ledger.
type Result struct {
	Data   *Data
	Ledger *uncertainty.Ledger
}

// Run executes the stages in order; it stops at the first stage error.
func (p *Pipeline) Run(d *Data) (*Result, error) {
	ledger := &uncertainty.Ledger{}
	cur := d
	for i, s := range p.Stages {
		next, entry, err := s.Apply(cur)
		if err != nil {
			return nil, fmt.Errorf("pipeline: stage %d (%s): %w", i, s.Name(), err)
		}
		ledger.Record(entry)
		cur = next
	}
	return &Result{Data: cur, Ledger: ledger}, nil
}

// MergeStage integrates raw sensor streams into records (the acquisition →
// integration boundary). Its input Data is ignored; streams come from the
// stage itself, so a pipeline can start from raw streams.
type MergeStage struct {
	Streams   []sensors.Stream
	Tolerance float64
}

// Name implements Stage.
func (m MergeStage) Name() string { return "merge" }

// Apply implements Stage.
func (m MergeStage) Apply(*Data) (*Data, uncertainty.Entry, error) {
	rec, err := preprocess.MergeStreams(m.Streams, m.Tolerance)
	if err != nil {
		return nil, uncertainty.Entry{}, err
	}
	d := &Data{Times: rec.Times, Quantities: rec.Quantity, X: rec.X, Mask: rec.Mask}
	return d, uncertainty.Entry{
		Stage:       m.Name(),
		Description: fmt.Sprintf("merged %d streams at tol %g: %d records, %.1f%% missing", len(m.Streams), m.Tolerance, len(rec.Times), 100*d.MissingFraction()),
		InfoLost:    0,
		Tracked:     true,
	}, nil
}

// CleanStage flags and blanks outlier cells.
type CleanStage struct {
	ZThreshold float64 // default 4
}

// Name implements Stage.
func (c CleanStage) Name() string { return "clean" }

// Apply implements Stage.
func (c CleanStage) Apply(d *Data) (*Data, uncertainty.Entry, error) {
	z := c.ZThreshold
	if z <= 0 {
		z = 4
	}
	out := d.Clone()
	flagged := preprocess.IdentifyNoise(out.X, out.Mask, z)
	preprocess.CleanNoise(out.X, out.Mask, flagged)
	lost := 0.0
	if len(d.X) > 0 && len(d.X[0]) > 0 {
		lost = float64(len(flagged)) / float64(len(d.X)*len(d.X[0]))
	}
	return out, uncertainty.Entry{
		Stage:       c.Name(),
		Description: fmt.Sprintf("flagged %d outlier cells at z=%g", len(flagged), z),
		InfoLost:    lost,
		Tracked:     true,
	}, nil
}

// ImputeStage fills missing cells with the configured imputer. TrackBias
// controls whether the stage estimates and reports the distortion it
// introduces (the costly bookkeeping of Section IV); with TrackBias false
// the entry is marked untracked, breaking the chain of trust.
type ImputeStage struct {
	Imputer   impute.Imputer
	TrackBias bool
}

// Name implements Stage.
func (s ImputeStage) Name() string {
	if s.Imputer == nil {
		return "impute/<nil>"
	}
	return "impute/" + s.Imputer.String()
}

// Apply implements Stage.
func (s ImputeStage) Apply(d *Data) (*Data, uncertainty.Entry, error) {
	if s.Imputer == nil {
		return nil, uncertainty.Entry{}, fmt.Errorf("pipeline: nil imputer")
	}
	out := d.Clone()
	missBefore := d.MissingFraction()
	filled, err := s.Imputer.Impute(out.X, out.Mask)
	if err != nil {
		return nil, uncertainty.Entry{}, err
	}
	var bias, variance float64
	if s.TrackBias && filled > 0 {
		// Estimate distortion by leave-one-out probing: blank a sample of
		// observed cells, re-impute, compare.
		bias, variance = probeImputerDistortion(d, s.Imputer)
	}
	// Imputed cells are now "observed" for downstream stages.
	for i := range out.Mask {
		for j := range out.Mask[i] {
			out.Mask[i][j] = false
		}
	}
	return out, uncertainty.Entry{
		Stage:              s.Name(),
		Description:        fmt.Sprintf("filled %d cells (%.1f%% were missing)", filled, 100*missBefore),
		BiasIntroduced:     bias,
		VarianceIntroduced: variance,
		InfoLost:           0,
		Tracked:            s.TrackBias,
	}, nil
}

// probeImputerDistortion blanks up to 40 observed cells, re-imputes, and
// returns (mean error, error variance) of the reconstruction.
func probeImputerDistortion(d *Data, im impute.Imputer) (bias, variance float64) {
	rng := stats.NewRNG(99)
	type cell struct{ i, j int }
	var obs []cell
	for i := range d.X {
		for j := range d.X[i] {
			if !d.Mask[i][j] {
				obs = append(obs, cell{i, j})
			}
		}
	}
	if len(obs) == 0 {
		return 0, 0
	}
	rng.Shuffle(len(obs), func(a, b int) { obs[a], obs[b] = obs[b], obs[a] })
	if len(obs) > 40 {
		obs = obs[:40]
	}
	probe := d.Clone()
	truth := make([]float64, len(obs))
	for t, c := range obs {
		truth[t] = probe.X[c.i][c.j]
		probe.Mask[c.i][c.j] = true
		probe.X[c.i][c.j] = 0
	}
	if _, err := im.Impute(probe.X, probe.Mask); err != nil {
		return 0, 0
	}
	errs := make([]float64, len(obs))
	for t, c := range obs {
		errs[t] = probe.X[c.i][c.j] - truth[t]
	}
	return stats.Mean(errs), stats.Variance(errs)
}

// DropIncompleteStage is the alternative to imputation: keep only complete
// records. The information loss is the dropped-row fraction.
type DropIncompleteStage struct{}

// Name implements Stage.
func (DropIncompleteStage) Name() string { return "drop-incomplete" }

// Apply implements Stage.
func (DropIncompleteStage) Apply(d *Data) (*Data, uncertainty.Entry, error) {
	out := &Data{Quantities: d.Quantities}
	kept := 0
	for i := range d.X {
		complete := true
		for _, m := range d.Mask[i] {
			if m {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		kept++
		if len(d.Times) > 0 {
			out.Times = append(out.Times, d.Times[i])
		}
		out.X = append(out.X, append([]float64(nil), d.X[i]...))
		out.Mask = append(out.Mask, make([]bool, len(d.Mask[i])))
	}
	lost := 0.0
	if len(d.X) > 0 {
		lost = 1 - float64(kept)/float64(len(d.X))
	}
	return out, uncertainty.Entry{
		Stage:       "drop-incomplete",
		Description: fmt.Sprintf("kept %d of %d records", kept, len(d.X)),
		InfoLost:    lost,
		Tracked:     true,
	}, nil
}

// NormalizeStage rescales features to [0, 1].
type NormalizeStage struct{}

// Name implements Stage.
func (NormalizeStage) Name() string { return "normalize" }

// Apply implements Stage.
func (NormalizeStage) Apply(d *Data) (*Data, uncertainty.Entry, error) {
	out := d.Clone()
	preprocess.Normalize(out.X, out.Mask)
	return out, uncertainty.Entry{
		Stage:       "normalize",
		Description: "min-max scaled each quantity to [0,1]",
		Tracked:     true,
	}, nil
}

// ReduceStage applies instance selection (systematic sampling).
type ReduceStage struct {
	Stride int
}

// Name implements Stage.
func (ReduceStage) Name() string { return "reduce" }

// Apply implements Stage.
func (r ReduceStage) Apply(d *Data) (*Data, uncertainty.Entry, error) {
	stride := r.Stride
	if stride < 1 {
		stride = 1
	}
	keep := preprocess.SelectInstances(len(d.X), stride)
	out := &Data{Quantities: d.Quantities}
	for _, i := range keep {
		if len(d.Times) > 0 {
			out.Times = append(out.Times, d.Times[i])
		}
		out.X = append(out.X, append([]float64(nil), d.X[i]...))
		out.Mask = append(out.Mask, append([]bool(nil), d.Mask[i]...))
	}
	lost := 0.0
	if len(d.X) > 0 {
		lost = 1 - float64(len(keep))/float64(len(d.X))
	}
	return out, uncertainty.Entry{
		Stage:       "reduce",
		Description: fmt.Sprintf("systematic sample stride %d: %d -> %d records", stride, len(d.X), len(out.X)),
		InfoLost:    lost,
		Tracked:     true,
	}, nil
}

// ReconstructionRMSE compares pipeline output values against the fleet's
// ground-truth fields at the record time-stamps — the E12 quality metric.
// Only cells marked observed contribute... all cells contribute when the
// mask is cleared by imputation.
func ReconstructionRMSE(d *Data, devs []sensors.Device) float64 {
	if len(d.X) == 0 || len(devs) == 0 {
		return 0
	}
	truth := sensors.GroundTruth(devs, d.Times)
	var pred, want []float64
	for i := range d.X {
		for j := range d.X[i] {
			if j >= len(devs) || d.Mask[i][j] {
				continue
			}
			pred = append(pred, d.X[i][j])
			want = append(want, truth[i][j])
		}
	}
	if len(pred) == 0 {
		return math.NaN()
	}
	return stats.RMSE(pred, want)
}

var (
	_ Stage = MergeStage{}
	_ Stage = CleanStage{}
	_ Stage = ImputeStage{}
	_ Stage = DropIncompleteStage{}
	_ Stage = NormalizeStage{}
	_ Stage = ReduceStage{}
)

// InterpolateStage fills missing cells by linear interpolation over the
// record time-stamps — the preparation move Section I-B calls "alignment of
// data from different dimensions, interpolation/extrapolation", and the
// natural companion of MergeStage. Like ImputeStage, TrackBias selects
// whether the stage pays the bookkeeping cost that keeps the chain of
// trust intact.
type InterpolateStage struct {
	TrackBias bool
}

// Name implements Stage.
func (InterpolateStage) Name() string { return "interpolate" }

// Apply implements Stage.
func (s InterpolateStage) Apply(d *Data) (*Data, uncertainty.Entry, error) {
	out := d.Clone()
	missBefore := d.MissingFraction()
	filled, err := impute.InterpolateColumns(out.Times, out.X, out.Mask)
	if err != nil {
		return nil, uncertainty.Entry{}, err
	}
	var bias, variance float64
	if s.TrackBias && filled > 0 {
		bias, variance = probeInterpolationDistortion(d)
	}
	for i := range out.Mask {
		for j := range out.Mask[i] {
			out.Mask[i][j] = false
		}
	}
	return out, uncertainty.Entry{
		Stage:              s.Name(),
		Description:        fmt.Sprintf("interpolated %d cells (%.1f%% were missing)", filled, 100*missBefore),
		BiasIntroduced:     bias,
		VarianceIntroduced: variance,
		Tracked:            s.TrackBias,
	}, nil
}

// probeInterpolationDistortion blanks a sample of observed cells,
// re-interpolates, and returns (mean error, error variance).
func probeInterpolationDistortion(d *Data) (bias, variance float64) {
	rng := stats.NewRNG(101)
	type cell struct{ i, j int }
	var obs []cell
	for i := range d.X {
		for j := range d.X[i] {
			if !d.Mask[i][j] {
				obs = append(obs, cell{i, j})
			}
		}
	}
	if len(obs) == 0 {
		return 0, 0
	}
	rng.Shuffle(len(obs), func(a, b int) { obs[a], obs[b] = obs[b], obs[a] })
	if len(obs) > 40 {
		obs = obs[:40]
	}
	probe := d.Clone()
	truth := make([]float64, len(obs))
	for t, c := range obs {
		truth[t] = probe.X[c.i][c.j]
		probe.Mask[c.i][c.j] = true
		probe.X[c.i][c.j] = 0
	}
	if _, err := impute.InterpolateColumns(probe.Times, probe.X, probe.Mask); err != nil {
		return 0, 0
	}
	errs := make([]float64, len(obs))
	for t, c := range obs {
		errs[t] = probe.X[c.i][c.j] - truth[t]
	}
	return stats.Mean(errs), stats.Variance(errs)
}

var _ Stage = InterpolateStage{}
