// Command iotml-lint is the repo's determinism linter: a multichecker over
// the internal/analyzers suite (seededrand, maporder, walltime,
// hotpathalloc) that fails the build the moment a source change violates
// one of the bit-identical contracts the test suite defends after the
// fact.
//
// Usage mirrors go vet:
//
//	iotml-lint [-tags loadsmoke] [packages]
//
// Packages default to ./... . Test files are analyzed together with
// production files, so tag-gated suites (-tags loadsmoke, -tags
// scalesmoke) come under the gate too. Exit status: 0 clean, 1 findings,
// 2 load or internal error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analyzers"
	"repro/internal/analyzers/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("iotml-lint", flag.ExitOnError)
	tags := fs.String("tags", "", "comma-separated build tags (like go build -tags)")
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: iotml-lint [-tags tag,list] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	all := suite.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := analyzers.LoadConfig{}
	if *tags != "" {
		cfg.Tags = strings.Split(*tags, ",")
	}
	pkgs, err := analyzers.Load(cfg, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iotml-lint:", err)
		return 2
	}
	type finding struct {
		file      string
		line, col int
		msg       string
		analyzer  string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range all {
			diags, err := analyzers.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "iotml-lint:", err)
				return 2
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{relPath(pos.Filename), pos.Line, pos.Column, d.Message, a.Name})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: %s (%s)\n", f.file, f.line, f.col, f.msg, f.analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "iotml-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// relPath renders positions relative to the working directory when
// possible, matching go vet's output style.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
