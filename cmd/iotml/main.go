// Command iotml regenerates the paper's tables, figures, and quantitative
// claims.
//
// Usage:
//
//	iotml [-parallel N] list               list the experiment catalogue
//	iotml [-parallel N] run all [--fast]   run every experiment (--fast skips expensive ones)
//	iotml [-parallel N] run E7             run one experiment by id
//	iotml table1                           print Table I (alias for run E1)
//	iotml figure2 [--dot]                  print Figure 2 (or its DOT rendering)
//	iotml debruijn <n>                     print the de Bruijn SCD of B_n
//	iotml fit -o model.iotml ...           fit and persist a model artifact
//	                                       (-data train.csv for real data,
//	                                       -v / -progress-jsonl for progress)
//	iotml predict -m model.iotml ...       score JSON instances offline
//	iotml serve -m model.iotml -addr :8080 serve the batched inference API
//	                                       (SIGINT/SIGTERM drains, exits 0)
//	iotml serve -models dir/ -addr :8080   serve every *.iotml in dir with
//	                                       hot-reload and per-model routing
//	iotml search-worker -addr :7600        run a distributed-search worker
//	                                       (pair with fit -dist-workers)
//
// -parallel N bounds total concurrency: `run all` spends the budget across
// experiments (independent experiments run concurrently, their rows
// sequentially), while single-experiment runs spend it across the rows
// inside the experiment; 0 (the default) means all available cores, 1
// forces fully sequential execution. Output is identical at every setting
// (only E7's wall-clock ms column varies run to run).
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/retry"
)

func main() {
	// The CLI edge is the one place wall-clock seeding is wanted: spread
	// the shared retry-jitter schedule across processes so fleet replicas
	// don't back off in lockstep. Libraries and tests keep the package's
	// deterministic default.
	retry.Seed(time.Now().UnixNano())
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iotml:", err)
		os.Exit(1)
	}
}

// parseParallel strips a -parallel/--parallel flag (as "-parallel N" or
// "-parallel=N") from args, returning the remaining arguments and the
// requested worker count (0 when absent, meaning all cores).
func parseParallel(args []string) ([]string, int, error) {
	rest := make([]string, 0, len(args))
	workers := 0
	for i := 0; i < len(args); i++ {
		a := args[i]
		name, val, eq := strings.Cut(a, "=")
		if name != "-parallel" && name != "--parallel" {
			rest = append(rest, a)
			continue
		}
		if !eq {
			if i+1 >= len(args) {
				return nil, 0, fmt.Errorf("-parallel needs a worker count")
			}
			i++
			val = args[i]
		}
		v, err := strconv.Atoi(val)
		if err != nil || v < 0 {
			return nil, 0, fmt.Errorf("-parallel needs a non-negative integer, got %q", val)
		}
		workers = v
	}
	return rest, workers, nil
}

func run(args []string) error {
	args, workers, err := parseParallel(args)
	if err != nil {
		return err
	}
	experiments.SetParallelism(workers)
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "list":
		for _, r := range experiments.All() {
			tag := ""
			if r.Expensive {
				tag = "  (expensive)"
			}
			fmt.Printf("  %-4s %s%s\n", r.ID, r.Title, tag)
		}
		return nil
	case "run":
		if len(args) < 2 {
			return fmt.Errorf("run needs an experiment id or 'all'")
		}
		if args[1] == "all" {
			fast := len(args) > 2 && args[2] == "--fast"
			// The catalogue level gets the whole -parallel budget; rows
			// inside each experiment run sequentially so total concurrency
			// stays bounded by N rather than N².
			experiments.SetParallelism(1)
			results, err := experiments.RunCatalogue(fast, workers)
			if err != nil {
				return err
			}
			for _, res := range results {
				if res.Table == nil {
					fmt.Printf("%s — skipped (--fast)\n\n", res.Runner.ID)
					continue
				}
				fmt.Println(res.Table)
			}
			return nil
		}
		r, ok := experiments.ByID(args[1])
		if !ok {
			return fmt.Errorf("unknown experiment %q (try 'iotml list')", args[1])
		}
		return runOne(r)
	case "table1":
		fmt.Println(experiments.Table1())
		return nil
	case "figure2":
		if len(args) > 1 && args[1] == "--dot" {
			fmt.Print(experiments.FigureLatticeDOT(4))
			return nil
		}
		fmt.Println(experiments.Figure2())
		return nil
	case "fit":
		return runFit(args[1:], workers)
	case "predict":
		return runPredict(args[1:])
	case "serve":
		return runServe(args[1:])
	case "search-worker":
		return runSearchWorker(args[1:], workers)
	case "debruijn":
		n := 3
		if len(args) > 1 {
			v, err := strconv.Atoi(args[1])
			if err != nil || v < 0 || v > 16 {
				return fmt.Errorf("debruijn needs n in [0,16]")
			}
			n = v
		}
		fmt.Println(experiments.DeBruijnTable(n))
		return nil
	case "-h", "--help", "help":
		usage()
		return nil
	default:
		return fmt.Errorf("unknown command %q (try 'iotml help')", args[0])
	}
}

func runOne(r experiments.Runner) error {
	tab, err := r.Run()
	if err != nil {
		return fmt.Errorf("%s: %w", r.ID, err)
	}
	fmt.Println(tab)
	return nil
}

func usage() {
	fmt.Println(`iotml — reproduction harness for "Toward IoT-Friendly Learning Models" (ICDCS 2018)

commands:
  list               list the experiment catalogue
  run all [--fast]   run every experiment (--fast skips expensive ones)
  run <id>           run one experiment (e.g. run E7)
  table1             print the paper's Table I
  figure2 [--dot]    print the paper's Figure 2 (optionally as GraphViz DOT)
  debruijn <n>       print the de Bruijn symmetric chain decomposition of B_n
  fit -o m.iotml     fit a model and save it as a versioned artifact
                     (-workload -n -seed -learner -kernel -combiner -search,
                     or -data train.csv|.jsonl -label -features -views -nan
                     for real data; -backend exact|f32|nystrom:256|rff:128|auto
                     picks the numeric backend (f32 halves Gram memory
                     traffic, nystrom/rff score on low-rank factors for
                     large n, auto picks from the workload size; -gram is
                     a deprecated alias), -budget-topk 8 re-scores the top
                     survivors exactly; -v streams live progress,
                     -progress-jsonl FILE captures the event stream;
                     Ctrl-C aborts at the next candidate; see fit -h)
  predict -m m.iotml score JSON instances offline (reads {"instances": [...]}
                     from -in file or stdin, writes {"scores","labels"})
  serve -m m.iotml   serve the batched HTTP inference API on -addr (default
                     :8080): GET /v1/healthz, GET /v1/models,
                     POST /v1/models/{id}/predict, GET /v1/metrics, plus the
                     legacy /healthz /model /predict /metrics aliases;
                     SIGINT/SIGTERM drains in-flight batches and exits 0
  serve -models dir/ serve every *.iotml artifact in dir (model id = file
                     name); the directory is polled (-reload, default 2s)
                     and changed artifacts hot-swap atomically with zero
                     dropped requests; -default picks the legacy-route
                     model, -queue/-global-queue bound load shedding
  search-worker      run one distributed-search worker on -addr (default
                     :7600); "fit -dist-workers host:port,..." shards
                     candidate scoring across such workers with retry,
                     re-dispatch, and local fallback — the selection is
                     bit-identical to an in-process fit

flags:
  -parallel N        worker pool size for run all and per-experiment rows
                     (0 = all cores, the default; 1 = fully sequential;
                     output is deterministic at every setting)`)
}
