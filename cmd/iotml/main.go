// Command iotml regenerates the paper's tables, figures, and quantitative
// claims.
//
// Usage:
//
//	iotml list               list the experiment catalogue
//	iotml run all [--fast]   run every experiment (--fast skips expensive ones)
//	iotml run E7             run one experiment by id
//	iotml table1             print Table I (alias for run E1)
//	iotml figure2 [--dot]    print Figure 2 (or its DOT rendering)
//	iotml debruijn <n>       print the de Bruijn SCD of B_n
package main

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iotml:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "list":
		for _, r := range experiments.All() {
			tag := ""
			if r.Expensive {
				tag = "  (expensive)"
			}
			fmt.Printf("  %-4s %s%s\n", r.ID, r.Title, tag)
		}
		return nil
	case "run":
		if len(args) < 2 {
			return fmt.Errorf("run needs an experiment id or 'all'")
		}
		if args[1] == "all" {
			fast := len(args) > 2 && args[2] == "--fast"
			for _, r := range experiments.All() {
				if fast && r.Expensive {
					fmt.Printf("%s — skipped (--fast)\n\n", r.ID)
					continue
				}
				if err := runOne(r); err != nil {
					return err
				}
			}
			return nil
		}
		r, ok := experiments.ByID(args[1])
		if !ok {
			return fmt.Errorf("unknown experiment %q (try 'iotml list')", args[1])
		}
		return runOne(r)
	case "table1":
		fmt.Println(experiments.Table1())
		return nil
	case "figure2":
		if len(args) > 1 && args[1] == "--dot" {
			fmt.Print(experiments.FigureLatticeDOT(4))
			return nil
		}
		fmt.Println(experiments.Figure2())
		return nil
	case "debruijn":
		n := 3
		if len(args) > 1 {
			v, err := strconv.Atoi(args[1])
			if err != nil || v < 0 || v > 16 {
				return fmt.Errorf("debruijn needs n in [0,16]")
			}
			n = v
		}
		fmt.Println(experiments.DeBruijnTable(n))
		return nil
	case "-h", "--help", "help":
		usage()
		return nil
	default:
		return fmt.Errorf("unknown command %q (try 'iotml help')", args[0])
	}
}

func runOne(r experiments.Runner) error {
	tab, err := r.Run()
	if err != nil {
		return fmt.Errorf("%s: %w", r.ID, err)
	}
	fmt.Println(tab)
	return nil
}

func usage() {
	fmt.Println(`iotml — reproduction harness for "Toward IoT-Friendly Learning Models" (ICDCS 2018)

commands:
  list               list the experiment catalogue
  run all [--fast]   run every experiment (--fast skips expensive ones)
  run <id>           run one experiment (e.g. run E7)
  table1             print the paper's Table I
  figure2 [--dot]    print the paper's Figure 2 (optionally as GraphViz DOT)
  debruijn <n>       print the de Bruijn symmetric chain decomposition of B_n`)
}
