// Model lifecycle subcommands: fit persists a trained model artifact,
// predict scores instances against one offline, serve exposes it as the
// batched HTTP inference service (internal/serve) — the train-once/
// serve-forever split on the command line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/kernelmachine"
	"repro/internal/mkl"
	"repro/internal/model"
	"repro/internal/serve"
)

// buildWorkload generates one of the synthetic faceted workloads,
// standardized the way the experiments and examples consume them.
func buildWorkload(workload string, n int, seed int64) (*dataset.Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	var d *dataset.Dataset
	switch workload {
	case "biometric":
		cfg := dataset.DefaultBiometricConfig()
		if n > 0 {
			cfg.N = n
		}
		d = dataset.SyntheticBiometric(cfg, rng)
	case "surface":
		cfg := dataset.DefaultSurfaceConfig()
		if n > 0 {
			cfg.N = n
		}
		d = dataset.SyntheticObjectSurface(cfg, rng)
	default:
		return nil, fmt.Errorf("unknown workload %q (biometric|surface)", workload)
	}
	d.Standardize()
	return d, nil
}

func buildTrainer(learner string, svmC float64, svmSeed int64) (kernelmachine.Trainer, error) {
	switch learner {
	case "ridge":
		return kernelmachine.Ridge{Lambda: 1e-2}, nil
	case "svm":
		return kernelmachine.SVM{C: svmC, Seed: svmSeed}, nil
	case "perceptron":
		return kernelmachine.Perceptron{}, nil
	default:
		return nil, fmt.Errorf("unknown learner %q (ridge|svm|perceptron)", learner)
	}
}

func buildFactory(kind string, gamma float64) (kernel.BlockKernelFactory, error) {
	switch kind {
	case "rbf":
		return kernel.RBFFactory(gamma), nil
	case "linear":
		return kernel.LinearFactory(), nil
	case "norm-rbf":
		return kernel.NormalizedFactory(kernel.RBFFactory(gamma)), nil
	default:
		return nil, fmt.Errorf("unknown kernel %q (rbf|linear|norm-rbf)", kind)
	}
}

func buildSearch(search string) (core.SearchStrategy, error) {
	switch search {
	case "chain":
		return core.SearchChain, nil
	case "chain-first":
		return core.SearchChainFirstImprovement, nil
	case "greedy":
		return core.SearchGreedy, nil
	case "exhaustive":
		return core.SearchExhaustive, nil
	default:
		return 0, fmt.Errorf("unknown search %q (chain|chain-first|greedy|exhaustive)", search)
	}
}

// runFit implements `iotml fit`: run the paper's partition-driven MKL fit
// on a synthetic workload and persist the deployment model as an artifact.
func runFit(args []string, workers int) error {
	fs := flag.NewFlagSet("fit", flag.ContinueOnError)
	out := fs.String("o", "", "output artifact path (required), e.g. model.iotml")
	workload := fs.String("workload", "biometric", "synthetic workload: biometric|surface")
	n := fs.Int("n", 0, "instances to generate (0 = workload default)")
	seed := fs.Int64("seed", 1, "workload generator seed")
	learner := fs.String("learner", "ridge", "learner: ridge|svm|perceptron")
	svmC := fs.Float64("svm-c", 1, "SVM soft-margin penalty")
	kernelKind := fs.String("kernel", "rbf", "block kernel: rbf|linear|norm-rbf")
	gamma := fs.Float64("gamma", 1.0, "RBF base bandwidth (gamma/|block|)")
	combiner := fs.String("combiner", "sum", "block combiner: sum|product")
	search := fs.String("search", "chain", "lattice search: chain|chain-first|greedy|exhaustive")
	folds := fs.Int("folds", 0, "CV folds (0 = default 4)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("fit: -o output path is required")
	}
	d, err := buildWorkload(*workload, *n, *seed)
	if err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	trainer, err := buildTrainer(*learner, *svmC, *seed)
	if err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	factory, err := buildFactory(*kernelKind, *gamma)
	if err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	strategy, err := buildSearch(*search)
	if err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	comb := kernel.CombineSum
	if *combiner == "product" {
		comb = kernel.CombineProduct
	} else if *combiner != "sum" {
		return fmt.Errorf("fit: unknown combiner %q (sum|product)", *combiner)
	}
	cfg := core.FitConfig{
		Search: strategy,
		MKL: mkl.Config{
			Factory:     factory,
			Combiner:    comb,
			Trainer:     trainer,
			Folds:       *folds,
			Parallelism: workers,
		},
	}
	res, err := core.PartitionDrivenMKL(d, cfg)
	if err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	art, err := res.Artifact()
	if err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	if err := art.SaveFile(*out); err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	fmt.Printf("fit: workload=%s n=%d d=%d seed=%d learner=%s\n", *workload, d.N(), d.D(), *seed, *learner)
	fmt.Printf("seed partition: %v (attrs %v)\n", res.Seed, res.SeedAttrs)
	fmt.Printf("best partition: %v  cv-score=%.4f  evaluations=%d\n", res.Best, res.Score, res.Evaluations)
	fmt.Printf("artifact: %s (%s, %d training rows, %d features)\n", *out, art.Learner, art.NumTrain(), art.Dim())
	return nil
}

// runPredict implements `iotml predict`: offline batch scoring of JSON
// instances against a saved artifact. The request and response shapes are
// exactly the serving API's, so a predict dry run and a /predict call are
// interchangeable.
func runPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	mpath := fs.String("m", "", "model artifact path (required)")
	in := fs.String("in", "-", "JSON request file ({\"instances\": [[...], ...]}), - for stdin")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mpath == "" {
		return fmt.Errorf("predict: -m model path is required")
	}
	art, err := model.LoadFile(*mpath)
	if err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return fmt.Errorf("predict: %w", err)
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req serve.PredictRequest
	if err := dec.Decode(&req); err != nil {
		return fmt.Errorf("predict: decoding request: %w", err)
	}
	rows := req.Instances
	if req.Instance != nil {
		rows = append(rows, req.Instance)
	}
	if len(rows) == 0 {
		return fmt.Errorf("predict: request has no instances")
	}
	for i, row := range rows {
		if err := model.ValidateRow(art.Dim(), row); err != nil {
			return fmt.Errorf("predict: instance %d: %w", i, err)
		}
	}
	pred, err := model.NewPredictor(art)
	if err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	scores, err := pred.Scores(rows)
	if err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	enc := json.NewEncoder(os.Stdout)
	return enc.Encode(serve.PredictResponse{Scores: scores, Labels: model.Labels(scores)})
}

// runServe implements `iotml serve`: load an artifact and serve the
// batched inference API until the process is stopped.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	mpath := fs.String("m", "", "model artifact path (required)")
	addr := fs.String("addr", ":8080", "listen address")
	maxBatch := fs.Int("max-batch", 0, "max instances per scoring batch (0 = default 64)")
	flush := fs.Duration("flush", 0, "batch flush interval (0 = default 2ms)")
	workers := fs.Int("workers", 0, "scoring workers (0 = default 2)")
	queue := fs.Int("queue", 0, "pending request queue depth (0 = default 256)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mpath == "" {
		return fmt.Errorf("serve: -m model path is required")
	}
	art, err := model.LoadFile(*mpath)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	srv, err := serve.New(art, serve.Config{
		MaxBatch:      *maxBatch,
		FlushInterval: *flush,
		Workers:       *workers,
		QueueDepth:    *queue,
	})
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	defer srv.Close()
	fmt.Printf("serving %s (%s, %d features) on %s\n", *mpath, art.Learner, art.Dim(), *addr)
	fmt.Printf("endpoints: GET /healthz  GET /model  POST /predict\n")
	if err := srv.ListenAndServe(*addr); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}
