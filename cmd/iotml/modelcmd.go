// Model lifecycle subcommands: fit persists a trained model artifact,
// predict scores instances against one offline, serve exposes it as the
// batched HTTP inference service (internal/serve) — the train-once/
// serve-forever split on the command line.
//
// fit drives the public iotml.Fit API end to end: synthetic workloads or
// real CSV/JSONL data (-data with a declarative schema via -label,
// -features, -views, -nan), live progress (-v), a machine-readable
// progress sink (-progress-jsonl), and context cancellation. serve installs
// a SIGINT/SIGTERM handler that drains in-flight micro-batches through the
// same context plumbing before exiting 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	iotml "repro"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/serve"
)

// buildWorkload generates one of the synthetic faceted workloads,
// standardized the way the experiments and examples consume them.
func buildWorkload(workload string, n int, seed int64) (*iotml.Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	var d *iotml.Dataset
	switch workload {
	case "biometric":
		cfg := dataset.DefaultBiometricConfig()
		if n > 0 {
			cfg.N = n
		}
		d = dataset.SyntheticBiometric(cfg, rng)
	case "surface":
		cfg := dataset.DefaultSurfaceConfig()
		if n > 0 {
			cfg.N = n
		}
		d = dataset.SyntheticObjectSurface(cfg, rng)
	default:
		return nil, fmt.Errorf("unknown workload %q (biometric|surface)", workload)
	}
	d.Standardize()
	return d, nil
}

// parseViews reads the CLI view syntax "name:col1,col2;name2:col3".
func parseViews(spec string) ([]iotml.SchemaView, error) {
	if spec == "" {
		return nil, nil
	}
	var views []iotml.SchemaView
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, cols, ok := strings.Cut(part, ":")
		if !ok || strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("bad view %q (want name:col1,col2)", part)
		}
		v := iotml.SchemaView{Name: strings.TrimSpace(name)}
		for _, c := range strings.Split(cols, ",") {
			if c = strings.TrimSpace(c); c != "" {
				v.Columns = append(v.Columns, c)
			}
		}
		if len(v.Columns) == 0 {
			return nil, fmt.Errorf("view %q has no columns", v.Name)
		}
		views = append(views, v)
	}
	return views, nil
}

// loadData ingests a CSV or JSONL training file (by extension) under the
// schema assembled from the CLI flags.
func loadData(path, label, features, views, nanPolicy string) (*iotml.Dataset, error) {
	nan, err := dataset.ParseNaNPolicy(nanPolicy)
	if err != nil {
		return nil, err
	}
	vs, err := parseViews(views)
	if err != nil {
		return nil, err
	}
	s := iotml.Schema{Label: label, Views: vs, NaN: nan}
	if features != "" {
		for _, f := range strings.Split(features, ",") {
			if f = strings.TrimSpace(f); f != "" {
				s.Features = append(s.Features, f)
			}
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".jsonl", ".ndjson":
		return iotml.ReadJSONL(f, s)
	default:
		return iotml.ReadCSV(f, s)
	}
}

func buildTrainer(learner string, svmC float64, svmSeed int64) (iotml.Learner, error) {
	switch learner {
	case "ridge":
		return iotml.RidgeLearner(1e-2), nil
	case "svm":
		return iotml.SVMLearner(svmC, svmSeed), nil
	case "perceptron":
		return iotml.PerceptronLearner(), nil
	default:
		return nil, fmt.Errorf("unknown learner %q (ridge|svm|perceptron)", learner)
	}
}

func buildFactory(kind string, gamma float64) (iotml.KernelFamily, error) {
	switch kind {
	case "rbf":
		return iotml.RBFKernels(gamma), nil
	case "linear":
		return iotml.LinearKernels(), nil
	case "norm-rbf":
		return iotml.NormalizedKernels(iotml.RBFKernels(gamma)), nil
	default:
		return nil, fmt.Errorf("unknown kernel %q (rbf|linear|norm-rbf)", kind)
	}
}

func buildSearch(search string) (iotml.SearchStrategy, error) {
	switch search {
	case "chain":
		return iotml.SearchChain, nil
	case "chain-first":
		return iotml.SearchChainFirstImprovement, nil
	case "greedy":
		return iotml.SearchGreedy, nil
	case "exhaustive":
		return iotml.SearchExhaustive, nil
	default:
		return 0, fmt.Errorf("unknown search %q (chain|chain-first|greedy|exhaustive)", search)
	}
}

// progressEvent is the machine-readable JSONL rendering of one fit event.
type progressEvent struct {
	Time        string  `json:"time"`
	Kind        string  `json:"kind"`
	Partition   string  `json:"partition"`
	Score       float64 `json:"score"`
	Best        string  `json:"best"`
	BestScore   float64 `json:"best_score"`
	Evaluations int     `json:"evaluations"`
	// Detail carries the dist-* events' human-readable payload (shard
	// range, worker address, failure reason); empty otherwise.
	Detail string `json:"detail,omitempty"`
}

// progressSink assembles the fit's progress callback from the -v and
// -progress-jsonl flags. cleanup flushes and closes the JSONL file; cb is
// nil when no progress output was requested.
func progressSink(verbose bool, jsonlPath string) (cb func(iotml.Event), cleanup func() error, err error) {
	var sinks []func(iotml.Event)
	if verbose {
		sinks = append(sinks, func(ev iotml.Event) {
			switch ev.Kind {
			case iotml.EventSeedSelected:
				fmt.Fprintf(os.Stderr, "fit: seed %v\n", ev.Partition)
			case iotml.EventCandidateEvaluated:
				fmt.Fprintf(os.Stderr, "fit: [%3d] %v score=%.4f  best=%.4f %v\n",
					ev.Evaluations, ev.Partition, ev.Score, ev.BestScore, ev.Best)
			case iotml.EventBestImproved:
				fmt.Fprintf(os.Stderr, "fit: [%3d] best improved to %.4f at %v\n",
					ev.Evaluations, ev.BestScore, ev.Best)
			case iotml.EventSearchFinished:
				fmt.Fprintf(os.Stderr, "fit: search finished: best=%.4f %v after %d evaluations\n",
					ev.BestScore, ev.Best, ev.Evaluations)
			case iotml.EventShardDispatched, iotml.EventShardRetried,
				iotml.EventShardRedispatched, iotml.EventWorkerDown, iotml.EventDistFallback:
				fmt.Fprintf(os.Stderr, "fit: dist: %s: %s\n", ev.Kind, ev.Detail)
			}
		})
	}
	cleanup = func() error { return nil }
	if jsonlPath != "" {
		f, ferr := os.Create(jsonlPath)
		if ferr != nil {
			return nil, nil, fmt.Errorf("progress sink: %w", ferr)
		}
		enc := json.NewEncoder(f)
		// A failed write (disk full, quota) must not silently truncate the
		// stream: remember the first encode error and surface it when the
		// sink is closed, failing the fit command.
		var encErr error
		sinks = append(sinks, func(ev iotml.Event) {
			if encErr != nil {
				return
			}
			encErr = enc.Encode(progressEvent{
				Time:        ev.Time.Format("2006-01-02T15:04:05.000000000Z07:00"),
				Kind:        ev.Kind.String(),
				Partition:   ev.Partition.String(),
				Score:       ev.Score,
				Best:        ev.Best.String(),
				BestScore:   ev.BestScore,
				Evaluations: ev.Evaluations,
				Detail:      ev.Detail,
			})
		})
		cleanup = func() error {
			closeErr := f.Close()
			if encErr != nil {
				return fmt.Errorf("progress sink %s: %w", jsonlPath, encErr)
			}
			if closeErr != nil {
				return fmt.Errorf("progress sink %s: %w", jsonlPath, closeErr)
			}
			return nil
		}
	}
	if len(sinks) == 0 {
		return nil, cleanup, nil
	}
	return func(ev iotml.Event) {
		for _, s := range sinks {
			s(ev)
		}
	}, cleanup, nil
}

// runFit implements `iotml fit`: run the paper's partition-driven MKL fit
// on a synthetic workload or a user-supplied CSV/JSONL file and persist
// the deployment model as an artifact.
func runFit(args []string, workers int) error {
	fs := flag.NewFlagSet("fit", flag.ContinueOnError)
	out := fs.String("o", "", "output artifact path (required), e.g. model.iotml")
	workload := fs.String("workload", "biometric", "synthetic workload: biometric|surface (ignored with -data)")
	data := fs.String("data", "", "train on a CSV/JSONL file instead of a synthetic workload")
	label := fs.String("label", "label", "label column for -data")
	features := fs.String("features", "", "comma-separated feature columns for -data (default: all non-label columns)")
	views := fs.String("views", "", `facet boundaries for -data: "face:f1,f2;iris:f3"`)
	nanPolicy := fs.String("nan", "reject", "NaN/missing-cell policy for -data: reject|missing|drop")
	standardize := fs.Bool("standardize", true, "standardize -data features to zero mean, unit variance")
	n := fs.Int("n", 0, "instances to generate (0 = workload default)")
	seed := fs.Int64("seed", 1, "workload generator seed")
	learner := fs.String("learner", "ridge", "learner: ridge|svm|perceptron")
	svmC := fs.Float64("svm-c", 1, "SVM soft-margin penalty")
	kernelKind := fs.String("kernel", "rbf", "block kernel: rbf|linear|norm-rbf")
	gamma := fs.Float64("gamma", 1.0, "RBF base bandwidth (gamma/|block|)")
	combiner := fs.String("combiner", "sum", "block combiner: sum|product")
	search := fs.String("search", "chain", "lattice search: chain|chain-first|greedy|exhaustive")
	backendSpec := fs.String("backend", "", "numeric backend: exact|f32|nystrom[:rank]|rff[:rank]|auto (auto picks from the workload size)")
	gram := fs.String("gram", "exact", "deprecated alias of -backend (exact|nystrom[:rank]|rff[:rank])")
	budgetTopK := fs.Int("budget-topk", 0, "with an approximate backend: re-score the top K candidates exactly before selecting (0 = off)")
	folds := fs.Int("folds", 0, "CV folds (0 = default 4)")
	verbose := fs.Bool("v", false, "stream live search progress to stderr")
	progressJSONL := fs.String("progress-jsonl", "", "write the progress event stream to this file as JSON lines")
	distWorkers := fs.String("dist-workers", "", `distribute candidate scoring across search-worker processes: "host:port,host:port"`)
	distDeadline := fs.Duration("dist-deadline", 0, "per-shard attempt deadline for -dist-workers (0 = default 2m)")
	distAttempts := fs.Int("dist-attempts", 0, "per-worker tries per shard before the worker is marked down (0 = default 3)")
	distShard := fs.Int("dist-shard", 0, "candidates per dispatched shard (0 = about two shards per worker per batch)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("fit: -o output path is required")
	}
	var d *iotml.Dataset
	var err error
	if *data != "" {
		d, err = loadData(*data, *label, *features, *views, *nanPolicy)
		if err == nil && *standardize {
			d.Standardize()
		}
	} else {
		d, err = buildWorkload(*workload, *n, *seed)
	}
	if err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	trainer, err := buildTrainer(*learner, *svmC, *seed)
	if err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	factory, err := buildFactory(*kernelKind, *gamma)
	if err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	strategy, err := buildSearch(*search)
	if err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	comb := iotml.CombineSum
	if *combiner == "product" {
		comb = iotml.CombineProduct
	} else if *combiner != "sum" {
		return fmt.Errorf("fit: unknown combiner %q (sum|product)", *combiner)
	}
	setFlags := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if setFlags["backend"] && setFlags["gram"] {
		return fmt.Errorf("fit: -backend and the deprecated -gram name the same choice; set only one")
	}
	spelling := *gram // the deprecated alias, default "exact"
	if setFlags["backend"] {
		spelling = *backendSpec
	}
	var backend iotml.Backend
	if spelling == "auto" {
		// Resolve against the loaded workload so a distributed fleet is
		// handed a concrete spelling, never "auto".
		backend = iotml.AutoBackend(d, iotml.CVAccuracy)
	} else if backend, err = iotml.ParseBackend(spelling); err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	progress, closeSink, err := progressSink(*verbose, *progressJSONL)
	if err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	opts := []iotml.Option{
		iotml.WithStrategy(strategy),
		iotml.WithKernelFamily(factory),
		iotml.WithCombiner(comb),
		iotml.WithLearner(trainer),
		iotml.WithFolds(*folds),
		iotml.WithParallelism(workers),
	}
	opts = append(opts, iotml.WithBackend(backend))
	if *budgetTopK > 0 {
		if !backend.IsApprox() {
			return fmt.Errorf("fit: -budget-topk requires an approximate backend (-backend nystrom[:rank] or rff[:rank])")
		}
		opts = append(opts, iotml.WithBudget(*budgetTopK))
	}
	if progress != nil {
		opts = append(opts, iotml.WithProgress(progress))
	}
	if *distWorkers != "" {
		if *budgetTopK > 0 {
			return fmt.Errorf("fit: -dist-workers does not support -budget-topk")
		}
		var fleet []string
		for _, w := range strings.Split(*distWorkers, ",") {
			if w = strings.TrimSpace(w); w != "" {
				fleet = append(fleet, w)
			}
		}
		if len(fleet) == 0 {
			return fmt.Errorf("fit: -dist-workers has no worker addresses")
		}
		// The spec mirrors the local flags, so a distributed fit and an
		// in-process fit from the same command line select identically.
		opts = append(opts, iotml.WithDistributedWorkers(iotml.DistOptions{
			Workers: fleet,
			Spec: iotml.DistSpec{
				Learner:   *learner,
				SVMC:      *svmC,
				SVMSeed:   *seed,
				Kernel:    *kernelKind,
				Gamma:     *gamma,
				Combiner:  *combiner,
				Folds:     *folds,
				Backend:   backend.String(),
				ExactGram: false,
			},
			ShardSize: *distShard,
			Deadline:  *distDeadline,
			Attempts:  *distAttempts,
		}))
	}
	// Ctrl-C aborts the search at the next candidate boundary; the partial
	// best-so-far is reported but not persisted.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := iotml.Fit(ctx, d, opts...)
	if sinkErr := closeSink(); sinkErr != nil && err == nil {
		err = sinkErr
	}
	if err != nil {
		if res != nil {
			fmt.Fprintf(os.Stderr, "fit: aborted after %d evaluations; best so far %v (%.4f), not persisted\n",
				res.Evaluations, res.Best, res.Score)
		}
		return fmt.Errorf("fit: %w", err)
	}
	art, err := res.Artifact()
	if err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	if err := art.SaveFile(*out); err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	source := *data
	if source == "" {
		source = fmt.Sprintf("workload=%s seed=%d", *workload, *seed)
	}
	fmt.Printf("fit: %s n=%d d=%d learner=%s\n", source, d.N(), d.D(), *learner)
	fmt.Printf("seed partition: %v (attrs %v)\n", res.Seed, res.SeedAttrs)
	fmt.Printf("best partition: %v  cv-score=%.4f  evaluations=%d\n", res.Best, res.Score, res.Evaluations)
	fmt.Printf("artifact: %s (%s, %d training rows, %d features)\n", *out, art.Learner, art.NumTrain(), art.Dim())
	return nil
}

// runPredict implements `iotml predict`: offline batch scoring of JSON
// instances against a saved artifact. The request and response shapes are
// exactly the serving API's, so a predict dry run and a /predict call are
// interchangeable.
func runPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	mpath := fs.String("m", "", "model artifact path (required)")
	in := fs.String("in", "-", "JSON request file ({\"instances\": [[...], ...]}), - for stdin")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mpath == "" {
		return fmt.Errorf("predict: -m model path is required")
	}
	art, err := model.LoadFile(*mpath)
	if err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return fmt.Errorf("predict: %w", err)
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req serve.PredictRequest
	if err := dec.Decode(&req); err != nil {
		return fmt.Errorf("predict: decoding request: %w", err)
	}
	rows := req.Instances
	if req.Instance != nil {
		rows = append(rows, req.Instance)
	}
	if len(rows) == 0 {
		return fmt.Errorf("predict: request has no instances")
	}
	for i, row := range rows {
		if err := model.ValidateRow(art.Dim(), row); err != nil {
			return fmt.Errorf("predict: instance %d: %w", i, err)
		}
	}
	pred, err := model.NewPredictor(art)
	if err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	scores, err := pred.Scores(rows)
	if err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	enc := json.NewEncoder(os.Stdout)
	return enc.Encode(serve.PredictResponse{Scores: scores, Labels: model.Labels(scores)})
}

// runServe implements `iotml serve`: serve one artifact (-m) or a watched
// directory of artifacts (-models) as the batched multi-model inference
// API until the process is stopped. With -models, changed files hot-swap
// atomically while the previous model drains. SIGINT/SIGTERM trigger a
// graceful shutdown — the listener stops accepting, in-flight
// micro-batches drain, workers exit — and the process exits 0.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	mpath := fs.String("m", "", "model artifact path (serves it as model id \"default\")")
	modelsDir := fs.String("models", "", "directory of *.iotml artifacts to serve and watch for changes")
	defaultModel := fs.String("default", "", "model id the legacy /predict and /model routes resolve to (defaults to the only model when one is registered)")
	addr := fs.String("addr", ":8080", "listen address")
	maxBatch := fs.Int("max-batch", 0, "max instances per scoring batch (0 = default 64)")
	flush := fs.Duration("flush", 0, "batch flush interval (0 = default 2ms)")
	workers := fs.Int("workers", 0, "scoring workers per model (0 = default 2)")
	queue := fs.Int("queue", 0, "per-model pending request queue depth; overflow sheds 429 (0 = default 256)")
	globalQueue := fs.Int("global-queue", 0, "max in-flight predictions across all models; overflow sheds 503 (0 = default 1024)")
	reload := fs.Duration("reload", 0, "model directory poll interval for hot-reload (0 = default 2s)")
	drain := fs.Duration("drain", 0, "graceful shutdown drain timeout (0 = default 10s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*mpath == "") == (*modelsDir == "") {
		return fmt.Errorf("serve: exactly one of -m (single artifact) or -models (artifact directory) is required")
	}

	opts := []serve.Option{
		serve.WithMaxBatch(*maxBatch),
		serve.WithFlushInterval(*flush),
		serve.WithWorkers(*workers),
		serve.WithQueueDepth(*queue),
		serve.WithGlobalQueueDepth(*globalQueue),
		serve.WithDrainTimeout(*drain),
		serve.WithReloadInterval(*reload),
	}
	if *defaultModel != "" {
		opts = append(opts, serve.WithDefaultModel(*defaultModel))
	}
	reg := serve.NewRegistry()
	if *mpath != "" {
		if err := reg.LoadFile("default", *mpath); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	} else {
		opts = append(opts, serve.WithModelDir(*modelsDir))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv, err := serve.New(ctx, reg, opts...)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	defer srv.Close()
	if *mpath != "" {
		fmt.Printf("serving %s on %s\n", *mpath, *addr)
	} else {
		fmt.Printf("serving %d models from %s on %s (hot-reload on)\n", reg.Len(), *modelsDir, *addr)
	}
	for _, id := range reg.IDs() {
		if info, ok := reg.Info(id); ok {
			fmt.Printf("  model %s: %s, %d features, fingerprint %s\n", id, info.LearnerKind, info.Dim, info.Fingerprint)
		}
	}
	fmt.Printf("endpoints: GET /v1/healthz  GET /v1/models  GET /v1/models/{id}  POST /v1/models/{id}/predict  GET /v1/metrics\n")
	fmt.Printf("legacy aliases: GET /healthz  GET /model  POST /predict  GET /metrics  (SIGINT/SIGTERM drains and exits 0)\n")
	if err := srv.ListenAndServeContext(ctx, *addr); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	m := srv.Totals()
	fmt.Printf("serve: shutdown complete (drained cleanly; %d requests, %d batches, %d shed, %d swaps)\n",
		m.Requests, m.Batches, m.Shed, m.Swaps)
	return nil
}
