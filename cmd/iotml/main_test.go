package main

import "testing"

func TestRunDispatch(t *testing.T) {
	// Cheap commands must succeed.
	for _, args := range [][]string{
		nil,
		{"help"},
		{"list"},
		{"table1"},
		{"figure2"},
		{"figure2", "--dot"},
		{"debruijn"},
		{"debruijn", "4"},
		{"run", "E1"},
		{"run", "E3"},
		{"run", "E5"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v) failed: %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"bogus"},
		{"run"},
		{"run", "E999"},
		{"debruijn", "nope"},
		{"debruijn", "99"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
