package main

import "testing"

func TestRunDispatch(t *testing.T) {
	// Cheap commands must succeed.
	for _, args := range [][]string{
		nil,
		{"help"},
		{"list"},
		{"table1"},
		{"figure2"},
		{"figure2", "--dot"},
		{"debruijn"},
		{"debruijn", "4"},
		{"run", "E1"},
		{"run", "E3"},
		{"run", "E5"},
		{"-parallel", "2", "run", "E1"},
		{"--parallel=4", "list"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v) failed: %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"bogus"},
		{"run"},
		{"run", "E999"},
		{"debruijn", "nope"},
		{"debruijn", "99"},
		{"-parallel", "list"},
		{"-parallel", "-3", "list"},
		{"list", "-parallel"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestParseParallel(t *testing.T) {
	args, workers, err := parseParallel([]string{"-parallel", "3", "run", "all"})
	if err != nil || workers != 3 || len(args) != 2 || args[0] != "run" {
		t.Fatalf("got args=%v workers=%d err=%v", args, workers, err)
	}
	args, workers, err = parseParallel([]string{"run", "all", "--parallel=8"})
	if err != nil || workers != 8 || len(args) != 2 {
		t.Fatalf("got args=%v workers=%d err=%v", args, workers, err)
	}
	args, workers, err = parseParallel([]string{"list"})
	if err != nil || workers != 0 || len(args) != 1 {
		t.Fatalf("got args=%v workers=%d err=%v", args, workers, err)
	}
}
