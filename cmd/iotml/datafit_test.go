package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	iotml "repro"
	"repro/internal/model"
)

// writeTrainCSV renders a small deterministic workload to a CSV file and
// returns its path plus the dataset it came from.
func writeTrainCSV(t *testing.T, dir string) (string, *iotml.Dataset) {
	t.Helper()
	cfg := iotml.DefaultBiometricConfig()
	cfg.N = 40
	d := iotml.SyntheticBiometric(cfg, iotml.NewRNG(1))
	path := filepath.Join(dir, "train.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := iotml.WriteCSV(f, d); err != nil {
		t.Fatal(err)
	}
	return path, d
}

// TestFitFromCSVWithProgressJSONL drives the real-data path end to end
// through the CLI: fit from a CSV file, capture the progress stream as
// JSONL, and check both the artifact and the stream.
func TestFitFromCSVWithProgressJSONL(t *testing.T) {
	dir := t.TempDir()
	csvPath, d := writeTrainCSV(t, dir)
	artPath := filepath.Join(dir, "model.iotml")
	progPath := filepath.Join(dir, "progress.jsonl")
	if err := run([]string{"-parallel", "1", "fit", "-o", artPath,
		"-data", csvPath, "-kernel", "linear",
		"-views", "face:face_0,face_1;fingerprint:fingerprint_0,fingerprint_1",
		"-progress-jsonl", progPath}); err != nil {
		t.Fatalf("fit -data: %v", err)
	}
	art, err := model.LoadFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	if art.Dim() != d.D() || art.NumTrain() != d.N() {
		t.Fatalf("artifact is %d features x %d rows, want %d x %d", art.Dim(), art.NumTrain(), d.D(), d.N())
	}
	if art.FeatureNames[0] != "face_0" {
		t.Fatalf("feature names not carried from CSV header: %v", art.FeatureNames[:2])
	}

	f, err := os.Open(progPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var kinds []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev progressEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, ev.Kind)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(kinds) < 4 || kinds[0] != "seed-selected" || kinds[len(kinds)-1] != "fit-finished" {
		t.Fatalf("unexpected progress stream: %v", kinds)
	}
}

// TestFitFromJSONLFile: the JSONL ingestion path through the CLI.
func TestFitFromJSONLFile(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	rng := iotml.NewRNG(5)
	for i := 0; i < 30; i++ {
		y := 1
		if i%2 == 0 {
			y = -1
		}
		rec := map[string]any{
			"s0":    float64(y) + rng.NormFloat64()*0.4,
			"s1":    rng.NormFloat64(),
			"label": y,
		}
		b, _ := json.Marshal(rec)
		sb.Write(b)
		sb.WriteByte('\n')
	}
	path := filepath.Join(dir, "train.jsonl")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	artPath := filepath.Join(dir, "model.iotml")
	if err := run([]string{"-parallel", "1", "fit", "-o", artPath,
		"-data", path, "-kernel", "linear", "-folds", "2"}); err != nil {
		t.Fatalf("fit -data jsonl: %v", err)
	}
	art, err := model.LoadFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	if art.Dim() != 2 || art.NumTrain() != 30 {
		t.Fatalf("artifact is %dx%d", art.Dim(), art.NumTrain())
	}
}

func TestParseViews(t *testing.T) {
	got, err := parseViews("face: f1 ,f2 ; iris:f3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "face" || got[0].Columns[1] != "f2" || got[1].Columns[0] != "f3" {
		t.Fatalf("parsed %+v", got)
	}
	for _, bad := range []string{"noviews", "x:", ":a,b"} {
		if _, err := parseViews(bad); err == nil {
			t.Errorf("parseViews(%q) should fail", bad)
		}
	}
}

// TestFitDataErrors: real-data flag errors surface cleanly.
func TestFitDataErrors(t *testing.T) {
	dir := t.TempDir()
	csvPath, _ := writeTrainCSV(t, dir)
	for _, args := range [][]string{
		{"fit", "-o", filepath.Join(dir, "x.iotml"), "-data", filepath.Join(dir, "missing.csv")},
		{"fit", "-o", filepath.Join(dir, "x.iotml"), "-data", csvPath, "-label", "nope"},
		{"fit", "-o", filepath.Join(dir, "x.iotml"), "-data", csvPath, "-nan", "nope"},
		{"fit", "-o", filepath.Join(dir, "x.iotml"), "-data", csvPath, "-views", "bad"},
		{"fit", "-o", filepath.Join(dir, "x.iotml"), "-data", csvPath, "-features", "zz"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
