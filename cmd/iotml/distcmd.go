// The distributed-search worker subcommand: `iotml search-worker -addr
// :7600` runs one shard-scoring worker process until SIGINT/SIGTERM. A
// coordinator (`iotml fit -dist-workers host:port,...`) installs the job
// — dataset plus evaluator spec, fingerprint-sealed — and dispatches
// candidate shards; the worker scores them with the same evaluation
// machinery an in-process fit uses, so scores are bit-identical no matter
// which process computes them.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/distsearch"
)

// runSearchWorker implements `iotml search-worker`.
func runSearchWorker(args []string, workers int) error {
	fs := flag.NewFlagSet("search-worker", flag.ContinueOnError)
	addr := fs.String("addr", ":7600", "listen address")
	maxJobs := fs.Int("max-jobs", 0, "installed jobs retained before the oldest is evicted (0 = default 4)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := &distsearch.WorkerServer{Parallelism: workers, MaxJobs: *maxJobs}
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- distsearch.Serve(ctx, *addr, w, ready) }()
	select {
	case bound := <-ready:
		fmt.Printf("search-worker: listening on %s (POST /v1/job, POST /v1/score, GET /v1/healthz)\n", bound)
	case err := <-errc:
		return fmt.Errorf("search-worker: %w", err)
	}
	if err := <-errc; err != nil {
		return fmt.Errorf("search-worker: %w", err)
	}
	fmt.Println("search-worker: shutdown complete")
	return nil
}
