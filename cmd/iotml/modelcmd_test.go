package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
)

// TestFitPredictLifecycle drives the offline lifecycle end to end through
// the CLI entry points: fit a tiny model to a temp artifact, load it, and
// score a request file with predict.
func TestFitPredictLifecycle(t *testing.T) {
	dir := t.TempDir()
	artPath := filepath.Join(dir, "model.iotml")
	if err := run([]string{"-parallel", "1", "fit", "-o", artPath,
		"-workload", "biometric", "-n", "40", "-kernel", "linear", "-seed", "1"}); err != nil {
		t.Fatalf("fit: %v", err)
	}
	art, err := model.LoadFile(artPath)
	if err != nil {
		t.Fatalf("loading fitted artifact: %v", err)
	}
	if art.LearnerKind != model.LearnerRidge {
		t.Fatalf("learner kind %q, want ridge", art.LearnerKind)
	}
	if art.NumTrain() != 40 {
		t.Fatalf("artifact has %d training rows, want 40", art.NumTrain())
	}

	// The default biometric workload has 18 features (3 signal facets of 2
	// plus 12 noise features); the request row must match.
	if art.Dim() != 18 {
		t.Fatalf("expected 18 features for the default biometric workload, got %d", art.Dim())
	}
	reqPath := filepath.Join(dir, "req.json")
	req := `{"instances": [[0.1, -0.2, 0.3, 0.4, -0.5, 0.6, 0.7, -0.8, 0.9, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]]}`
	if err := os.WriteFile(reqPath, []byte(req), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"predict", "-m", artPath, "-in", reqPath}); err != nil {
		t.Fatalf("predict: %v", err)
	}
}

func TestFitSurfaceWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("surface fit is slower; skipped in -short")
	}
	dir := t.TempDir()
	artPath := filepath.Join(dir, "surface.iotml")
	if err := run([]string{"-parallel", "1", "fit", "-o", artPath,
		"-workload", "surface", "-n", "40", "-learner", "svm", "-combiner", "product",
		"-search", "greedy", "-seed", "2"}); err != nil {
		t.Fatalf("fit: %v", err)
	}
	art, err := model.LoadFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	if art.LearnerKind != model.LearnerSVM {
		t.Fatalf("learner kind %q, want svm", art.LearnerKind)
	}
}

func TestModelSubcommandErrors(t *testing.T) {
	for _, args := range [][]string{
		{"fit"}, // missing -o
		{"fit", "-o", "/tmp/x.iotml", "-workload", "nope"},
		{"fit", "-o", "/tmp/x.iotml", "-learner", "nope"},
		{"fit", "-o", "/tmp/x.iotml", "-kernel", "nope"},
		{"fit", "-o", "/tmp/x.iotml", "-search", "nope"},
		{"fit", "-o", "/tmp/x.iotml", "-combiner", "nope"},
		{"predict"}, // missing -m
		{"predict", "-m", "/does/not/exist.iotml"},
		{"serve"}, // missing -m
		{"serve", "-m", "/does/not/exist.iotml"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
