// Command benchjson converts `go test -bench` text output on stdin into
// machine-readable JSON on stdout, so CI can archive benchmark results
// (BENCH_gram.json) and the perf trajectory of the Gram engine is tracked
// across PRs instead of living in log scrollback.
//
// With -baseline, the freshly parsed results are additionally compared
// against a committed snapshot and every benchmark whose ns/op or allocs/op
// regressed by more than -threshold is reported on stderr as a GitHub
// Actions annotation (plain text off CI). By default regressions warn —
// bench captures are noisy, so push-to-main runs flag the delta for a
// human instead of blocking. With -fail-on-regress, allocs/op regressions
// become errors and the exit status is 1: the blocking mode pull-request
// CI uses, so an allocation regression has to be acknowledged (by
// refreshing the committed baseline) before merge. ns/op regressions stay
// warnings even then — wall-clock is machine-dependent (the committed
// baseline and the CI runner are different hardware), while alloc counts
// are deterministic per (code, input) and are exactly what the zero-alloc
// fast paths defend. A missing or unreadable baseline never fails, even
// with -fail-on-regress: the first run of a new bench suite has no
// baseline yet.
//
// Usage:
//
//	go test -bench='^(BenchmarkGram_|BenchmarkParallel_|BenchmarkScore_)' -benchmem -run='^$' . | \
//	  go run ./cmd/benchjson -baseline BENCH_gram.json -threshold 0.20 [-fail-on-regress]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/benchparse"
)

func main() {
	baseline := flag.String("baseline", "", "committed benchmark JSON to diff against")
	threshold := flag.Float64("threshold", 0.20, "relative regression that triggers a report (0.20 = +20%)")
	failOnRegress := flag.Bool("fail-on-regress", false, "exit nonzero when any allocs/op regressed past the threshold (PR CI mode; ns/op always warns — it is machine-dependent)")
	flag.Parse()

	report, err := benchparse.Parse(bufio.NewReader(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	regressed := 0
	if *baseline != "" {
		regressed = reportRegressions(*baseline, report, *threshold, *failOnRegress)
	}
	reportInversions(report)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if regressed > 0 && *failOnRegress {
		fmt.Fprintf(os.Stderr, "benchjson: failing: %d regressed allocs/op metrics vs %s (refresh the baseline with `make bench-json` if the regression is intended)\n",
			regressed, *baseline)
		os.Exit(1)
	}
}

// reportInversions annotates every parallel benchmark variant (_W<n>) that
// failed to beat its sequential (_Seq) twin in this very run. Inversions
// never block — the affected workload may simply be too small to amortize
// fan-out on the current runner — but they must not pass silently either:
// the baseline diff cannot catch them (an inversion present in the baseline
// is "no regression" forever), so they get their own warning line.
func reportInversions(report *benchparse.Report) {
	for _, inv := range benchparse.Inversions(report) {
		fmt.Fprintf(os.Stderr, "::warning title=parallel inversion::%s (%gms) did not beat %s (%gms): %.2fx at %d workers — contention or workload too small\n",
			inv.Par, inv.ParNs/1e6, inv.Seq, inv.SeqNs/1e6, inv.Ratio, inv.Workers)
	}
}

// reportRegressions diffs report against the baseline file and prints one
// annotation per regressed metric, returning how many were blocking
// (allocs/op deltas when failing is enabled; ns/op deltas always stay
// warnings). A missing or unreadable baseline is itself only a warning:
// the first run of a new bench suite has no baseline yet.
func reportRegressions(path string, report *benchparse.Report, threshold float64, asErrors bool) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: skipping regression check: %v\n", err)
		return 0
	}
	var base benchparse.Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: skipping regression check: bad baseline %s: %v\n", path, err)
		return 0
	}
	deltas := benchparse.Regressions(&base, report, threshold)
	blocking := 0
	for _, d := range deltas {
		// ::warning::/::error:: make the line a GitHub Actions annotation;
		// elsewhere it is just a greppable prefix.
		level := "warning"
		if asErrors && d.Metric == "allocs/op" {
			level = "error"
			blocking++
		}
		ratio := fmt.Sprintf("%.2fx, threshold %.2fx", d.Ratio, 1+threshold)
		if d.Old == 0 {
			ratio = "was zero-alloc"
		}
		fmt.Fprintf(os.Stderr, "::%s title=benchmark regression::%s %s %.0f -> %.0f (%s)\n",
			level, d.Name, d.Metric, d.Old, d.New, ratio)
	}
	if len(deltas) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no regressions > %+.0f%% vs %s (%d benchmarks compared)\n",
			threshold*100, path, len(report.Benchmarks))
	}
	return blocking
}
