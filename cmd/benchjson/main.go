// Command benchjson converts `go test -bench` text output on stdin into
// machine-readable JSON on stdout, so CI can archive benchmark results
// (BENCH_gram.json) and the perf trajectory of the Gram engine is tracked
// across PRs instead of living in log scrollback.
//
// Usage:
//
//	go test -bench='^(BenchmarkGram_|BenchmarkParallel_)' -benchmem -run='^$' . | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/benchparse"
)

func main() {
	report, err := benchparse.Parse(bufio.NewReader(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
