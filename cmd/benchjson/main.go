// Command benchjson converts `go test -bench` text output on stdin into
// machine-readable JSON on stdout, so CI can archive benchmark results
// (BENCH_gram.json) and the perf trajectory of the Gram engine is tracked
// across PRs instead of living in log scrollback.
//
// With -baseline, the freshly parsed results are additionally compared
// against a committed snapshot and every benchmark whose ns/op or allocs/op
// regressed by more than -threshold is reported on stderr as a GitHub
// Actions warning annotation (plain text off CI). Regressions warn, they do
// not fail: single-iteration CI captures are noisy, so the annotation flags
// the delta for a human instead of blocking the run.
//
// Usage:
//
//	go test -bench='^(BenchmarkGram_|BenchmarkParallel_|BenchmarkScore_)' -benchmem -run='^$' . | \
//	  go run ./cmd/benchjson -baseline BENCH_gram.json -threshold 0.20
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/benchparse"
)

func main() {
	baseline := flag.String("baseline", "", "committed benchmark JSON to diff against (warn-only)")
	threshold := flag.Float64("threshold", 0.20, "relative regression that triggers a warning (0.20 = +20%)")
	flag.Parse()

	report, err := benchparse.Parse(bufio.NewReader(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	if *baseline != "" {
		warnRegressions(*baseline, report, *threshold)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// warnRegressions diffs report against the baseline file and prints one
// warning per regressed metric. A missing or unreadable baseline is itself
// only a warning: the first run of a new bench suite has no baseline yet.
func warnRegressions(path string, report *benchparse.Report, threshold float64) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: skipping regression check: %v\n", err)
		return
	}
	var base benchparse.Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: skipping regression check: bad baseline %s: %v\n", path, err)
		return
	}
	deltas := benchparse.Regressions(&base, report, threshold)
	// ::warning:: makes the line a GitHub Actions annotation; elsewhere it
	// is just a greppable prefix.
	for _, d := range deltas {
		ratio := fmt.Sprintf("%.2fx, threshold %.2fx", d.Ratio, 1+threshold)
		if d.Old == 0 {
			ratio = "was zero-alloc"
		}
		fmt.Fprintf(os.Stderr, "::warning title=benchmark regression::%s %s %.0f -> %.0f (%s)\n",
			d.Name, d.Metric, d.Old, d.New, ratio)
	}
	if len(deltas) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no regressions > %+.0f%% vs %s (%d benchmarks compared)\n",
			threshold*100, path, len(report.Benchmarks))
	}
}
