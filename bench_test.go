// Benchmarks regenerating every table, figure, and quantitative claim of
// the paper (one benchmark per experiment ID in DESIGN.md), plus
// micro-benchmarks for the load-bearing primitives. Run with:
//
//	go test -bench=. -benchmem
package iotml

import (
	"context"
	"testing"
	"time"

	"repro/internal/boolat"
	"repro/internal/chains"
	"repro/internal/combinat"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/kernel"
	"repro/internal/kernelmachine"
	"repro/internal/mkl"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/stats"
)

func runTable(b *testing.B, f func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if t == nil || len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// E1 — Table I.
func BenchmarkTable1_ChainDecompositionPi4(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Table1(), nil })
}

// E2 — Figure 2.
func BenchmarkFigure2_PartitionLattice4(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Figure2(), nil })
}

// E3 — in-text rough-set example.
func BenchmarkExample_RoughSetPhones(b *testing.B) {
	runTable(b, experiments.RoughExample)
}

// E4 — exploration cost series (exhaustive vs chain vs greedy).
func BenchmarkClaim_SearchCost(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.SearchCost(7) })
}

// E5 — lattice asymmetry counting claim.
func BenchmarkClaim_LatticeAsymmetry(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.LatticeAsymmetry(14), nil })
}

// E6 — LDD coverage guarantee.
func BenchmarkClaim_ChainCoverage(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.ChainCoverage(6) })
}

// E7 — headline MKL comparison.
func BenchmarkHeadline_MKLFacets(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.HeadlineMKL(1) })
}

// E8 — rough-set seeding objectives.
func BenchmarkClaim_RoughSeeding(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.RoughSeeding(1) })
}

// E9 — single-player missing-data tradeoff.
func BenchmarkClaim_SinglePlayerTradeoff(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.SinglePlayerTradeoff(1) })
}

// E10 — pipeline game regimes.
func BenchmarkClaim_PipelineGame(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.PipelineGameExperiment(1) })
}

// E11 — zero-sum GAN convergence.
func BenchmarkClaim_ZeroSumGAN(b *testing.B) {
	runTable(b, experiments.ZeroSumGAN)
}

// E12 — time-stamp merge integration sweep.
func BenchmarkClaim_TimestampMerge(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.TimestampMerge(1) })
}

// E13 — multi-view family comparison.
func BenchmarkClaim_MultiViewFamily(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.MultiViewFamily(1) })
}

// E14 — object-surface workload.
func BenchmarkClaim_ObjectSurface(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.ObjectSurface(1) })
}

// E15 — prediction veracity vs pipeline transparency.
func BenchmarkClaim_Veracity(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Veracity(1) })
}

// A1 — combiner ablation.
func BenchmarkAblation_Combiner(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.AblationCombiner(1) })
}

// A2 — ascent rule ablation.
func BenchmarkAblation_AscentRule(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.AblationAscentRule(1) })
}

// A3 — equilibrium solver ablation.
func BenchmarkAblation_EquilibriumSolver(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.AblationEquilibriumSolver(1) })
}

// A4 — chain source ablation.
func BenchmarkAblation_ChainSource(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.AblationChainSource(1) })
}

// --- micro-benchmarks for the primitives the experiments lean on ---

func BenchmarkMicro_DeBruijnSCD_B12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(boolat.DeBruijnSCD(12)); got == 0 {
			b.Fatal("empty decomposition")
		}
	}
}

func BenchmarkMicro_LDDDecompose_Pi7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := chains.Decompose(6)
		if len(d.Groups) == 0 {
			b.Fatal("empty decomposition")
		}
	}
}

func BenchmarkMicro_PartitionAll_n9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(partition.All(9)); got != 21147 {
			b.Fatalf("got %d partitions", got)
		}
	}
}

func BenchmarkMicro_PartitionMeetJoin(b *testing.B) {
	all := partition.All(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := all[i%len(all)]
		q := all[(i*7+13)%len(all)]
		_ = p.Meet(q)
		_ = p.Join(q)
	}
}

func BenchmarkMicro_Bell25(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = combinat.Bell(25)
	}
}

func BenchmarkMicro_GramRBF_200x18(b *testing.B) {
	d := dataset.SyntheticBiometric(dataset.DefaultBiometricConfig(), stats.NewRNG(1))
	k := kernel.RBF{Gamma: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = kernel.Gram(k, d.X)
	}
}

func BenchmarkMicro_SVMTrain_100(b *testing.B) {
	rng := stats.NewRNG(2)
	x := make([][]float64, 100)
	y := make([]int, 100)
	for i := range x {
		y[i] = 1
		if i%2 == 0 {
			y[i] = -1
		}
		x[i] = []float64{float64(y[i]) + rng.NormFloat64()*0.5, rng.NormFloat64()}
	}
	gram := kernel.Gram(kernel.RBF{Gamma: 1}, x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (kernelmachine.SVM{C: 1}).Train(gram, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_RidgeTrain_200(b *testing.B) {
	rng := stats.NewRNG(3)
	x := make([][]float64, 200)
	y := make([]int, 200)
	for i := range x {
		y[i] = 1
		if i%2 == 0 {
			y[i] = -1
		}
		x[i] = []float64{float64(y[i]) + rng.NormFloat64()*0.5, rng.NormFloat64()}
	}
	gram := kernel.Gram(kernel.RBF{Gamma: 1}, x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (kernelmachine.Ridge{}).Train(gram, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_ChainSearch_18features(b *testing.B) {
	d := dataset.SyntheticBiometric(dataset.DefaultBiometricConfig(), stats.NewRNG(4))
	d.Standardize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := mkl.NewEvaluator(d, mkl.Config{Objective: mkl.KernelAlignment, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mkl.ChainSearch(e, partition.Coarsest(d.D()), mkl.BestOfChain); err != nil {
			b.Fatal(err)
		}
	}
}

// --- sequential vs parallel search on the synthetic biometric workload ---
//
// One benchmark per (strategy, parallelism) pair; compare e.g.
// BenchmarkParallel_ChainSearch_Seq with BenchmarkParallel_ChainSearch_W4
// to measure the speedup of Parallelism=4 over the sequential path. The
// selected partition and score are asserted identical inside the loop, so
// these benchmarks also re-check the determinism guarantee on every run.

func parallelBenchData(b *testing.B) *dataset.Dataset {
	b.Helper()
	cfg := dataset.DefaultBiometricConfig()
	cfg.N = 120
	d := dataset.SyntheticBiometric(cfg, stats.NewRNG(4))
	d.Standardize()
	return d
}

func benchChainSearch(b *testing.B, workers int) {
	d := parallelBenchData(b)
	seed := partition.Coarsest(d.D())
	ref, err := mkl.NewEvaluator(d, mkl.Config{Objective: mkl.CVAccuracy, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	want, err := mkl.ChainSearch(ref, seed, mkl.BestOfChain)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := mkl.NewEvaluator(d, mkl.Config{Objective: mkl.CVAccuracy, Seed: 1, Parallelism: workers})
		if err != nil {
			b.Fatal(err)
		}
		var res *mkl.Result
		if workers == 1 {
			res, err = mkl.ChainSearch(e, seed, mkl.BestOfChain)
		} else {
			res, err = mkl.ChainSearchParallel(e, seed, mkl.BestOfChain)
		}
		if err != nil {
			b.Fatal(err)
		}
		if !res.Best.Equal(want.Best) || res.Score != want.Score {
			b.Fatalf("workers=%d: (%v, %v), sequential (%v, %v)", workers, res.Best, res.Score, want.Best, want.Score)
		}
	}
}

func BenchmarkParallel_ChainSearch_Seq(b *testing.B) { benchChainSearch(b, 1) }
func BenchmarkParallel_ChainSearch_W2(b *testing.B)  { benchChainSearch(b, 2) }
func BenchmarkParallel_ChainSearch_W4(b *testing.B)  { benchChainSearch(b, 4) }

func benchExhaustiveCone(b *testing.B, workers int) {
	// 7-feature workload from the coarsest seed: the full cone is Bell(7) =
	// 877 candidate configurations.
	const m = 7
	rng := stats.NewRNG(4)
	d := &dataset.Dataset{}
	for i := 0; i < 120; i++ {
		y := 1
		if rng.Float64() < 0.5 {
			y = -1
		}
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			if j < (m+1)/2 {
				row[j] = float64(y)*0.8 + rng.NormFloat64()*0.5
			} else {
				row[j] = rng.NormFloat64()
			}
		}
		d.X = append(d.X, row)
		d.Y = append(d.Y, y)
	}
	seed := partition.Coarsest(m)
	ref, err := mkl.NewEvaluator(d, mkl.Config{Objective: mkl.KernelAlignment, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	want, err := mkl.ExhaustiveCone(ref, seed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := mkl.NewEvaluator(d, mkl.Config{Objective: mkl.KernelAlignment, Seed: 1, Parallelism: workers})
		if err != nil {
			b.Fatal(err)
		}
		var res *mkl.Result
		if workers == 1 {
			res, err = mkl.ExhaustiveCone(e, seed)
		} else {
			res, err = mkl.ExhaustiveConeParallel(e, seed)
		}
		if err != nil {
			b.Fatal(err)
		}
		if !res.Best.Equal(want.Best) || res.Score != want.Score {
			b.Fatalf("workers=%d: (%v, %v), sequential (%v, %v)", workers, res.Best, res.Score, want.Best, want.Score)
		}
	}
}

func BenchmarkParallel_ExhaustiveCone_Seq(b *testing.B) { benchExhaustiveCone(b, 1) }
func BenchmarkParallel_ExhaustiveCone_W2(b *testing.B)  { benchExhaustiveCone(b, 2) }
func BenchmarkParallel_ExhaustiveCone_W4(b *testing.B)  { benchExhaustiveCone(b, 4) }

func BenchmarkParallel_RunCatalogueFast_Seq(b *testing.B) { benchCatalogue(b, 1) }
func BenchmarkParallel_RunCatalogueFast_W4(b *testing.B)  { benchCatalogue(b, 4) }

// --- scalar vs vectorized Gram engine on the synthetic biometric workload ---
//
// BenchmarkGram_* pairs measure the block-level Gram fast path against the
// pairwise Eval loop (see internal/kernel/blockgram.go), at the kernel
// level (one multiple-kernel configuration Gram) and at the search level
// (a full chain search, sequential and parallel). `make bench-json` turns
// these plus the BenchmarkParallel_* suite into BENCH_gram.json so the
// perf trajectory is tracked across PRs.

func gramBenchKernel(b *testing.B) (kernel.Kernel, *dataset.Dataset) {
	b.Helper()
	d := dataset.SyntheticBiometric(dataset.DefaultBiometricConfig(), stats.NewRNG(1))
	d.Standardize()
	k := kernel.FromPartition(d.ViewPartition(), kernel.RBFFactory(1.0), kernel.CombineSum)
	return k, d
}

// BenchmarkGram_Config_Scalar is the pairwise baseline: one Eval interface
// dispatch plus per-pair feature gathering for each of the n² pairs.
func BenchmarkGram_Config_Scalar(b *testing.B) {
	k, d := gramBenchKernel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = kernel.GramPairwise(k, d.X)
	}
}

// BenchmarkGram_Config_Vector routes the same configuration through the
// dense block engine.
func BenchmarkGram_Config_Vector(b *testing.B) {
	k, d := gramBenchKernel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = kernel.Gram(k, d.X)
	}
}

func BenchmarkGram_SingleRBF_Scalar(b *testing.B) {
	_, d := gramBenchKernel(b)
	k := kernel.RBF{Gamma: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = kernel.GramPairwise(k, d.X)
	}
}

func BenchmarkGram_SingleRBF_Vector(b *testing.B) {
	_, d := gramBenchKernel(b)
	k := kernel.RBF{Gamma: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = kernel.Gram(k, d.X)
	}
}

// benchGramSearch runs a full chain search (CV-accuracy objective, fresh
// evaluator and Gram-block cache per iteration, so every iteration pays the
// block Gram computations) with the engine toggled between scalar
// (ExactGram) and vectorized, sequential and parallel.
func benchGramSearch(b *testing.B, workers int, exact bool) {
	d := parallelBenchData(b)
	seed := partition.Coarsest(d.D())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := mkl.NewEvaluator(d, mkl.Config{
			Objective: mkl.CVAccuracy, Seed: 1, Parallelism: workers, ExactGram: exact,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mkl.ChainSearchParallel(e, seed, mkl.BestOfChain); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGram_ChainSearch_ScalarSeq(b *testing.B) { benchGramSearch(b, 1, true) }
func BenchmarkGram_ChainSearch_VectorSeq(b *testing.B) { benchGramSearch(b, 1, false) }
func BenchmarkGram_ChainSearch_ScalarW4(b *testing.B)  { benchGramSearch(b, 4, true) }
func BenchmarkGram_ChainSearch_VectorW4(b *testing.B)  { benchGramSearch(b, 4, false) }

// --- candidate-evaluation fast path (zero-alloc CV pipeline) ---
//
// BenchmarkScore_* measures one steady-state candidate evaluation — the
// unit of work the lattice search repeats per lattice point: Gram assembly
// from the block cache plus the objective (k-fold CV or centered
// alignment). The *_Reference variants force the scalar reference path
// (per-element fold gathers, allocating trainers) by hiding the trainer's
// ScratchTrainer implementation, so the committed BENCH_gram.json carries
// the fast-vs-reference delta. The score cache is cleared inside the loop
// so every iteration pays a full evaluation from warmed scratch.

// plainTrainer hides a trainer's ScratchTrainer implementation, pinning the
// evaluator to the reference CV loop.
type plainTrainer struct{ kernelmachine.Trainer }

func benchScore(b *testing.B, cfg mkl.Config) {
	d := parallelBenchData(b)
	e, err := mkl.NewEvaluator(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := d.ViewPartition()
	// Warm the Gram-block cache and every scratch buffer.
	want, err := e.Score(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ClearScoreCache()
		s, err := e.Score(p)
		if err != nil {
			b.Fatal(err)
		}
		if s != want {
			b.Fatalf("score drifted across iterations: %v != %v", s, want)
		}
	}
}

func BenchmarkScore_CVRidge(b *testing.B) {
	benchScore(b, mkl.Config{Objective: mkl.CVAccuracy, Seed: 1})
}

func BenchmarkScore_CVRidge_Reference(b *testing.B) {
	benchScore(b, mkl.Config{
		Objective: mkl.CVAccuracy, Seed: 1,
		Trainer: plainTrainer{kernelmachine.Ridge{}},
	})
}

func BenchmarkScore_CVSMO(b *testing.B) {
	benchScore(b, mkl.Config{
		Objective: mkl.CVAccuracy, Seed: 1,
		Trainer: kernelmachine.SVM{C: 1, Seed: 1},
	})
}

func BenchmarkScore_CVSMO_Reference(b *testing.B) {
	benchScore(b, mkl.Config{
		Objective: mkl.CVAccuracy, Seed: 1,
		Trainer: plainTrainer{kernelmachine.SVM{C: 1, Seed: 1}},
	})
}

func BenchmarkScore_Alignment(b *testing.B) {
	benchScore(b, mkl.Config{Objective: mkl.KernelAlignment, Seed: 1})
}

// BenchmarkFit_OptionsOverhead measures the same steady-state candidate
// evaluation as BenchmarkScore_CVRidge, but through the redesigned Fit
// plumbing: the configuration assembled by functional options, a bound
// cancellable context polled per candidate, and — because Score itself
// does not emit (the search loop does, via observe) — one per-candidate
// progress emission mirrored inline, exactly the Event construction and
// callback invocation the search performs per scored configuration. Its
// ns/op and allocs/op must match BenchmarkScore_CVRidge — the options and
// progress plumbing is free on the hot path (the alloc half is asserted
// hard by mkl's TestProgressAndContextPlumbingAddsNoAllocs and by
// cmd/benchjson's regression gate over this snapshot).
func BenchmarkFit_OptionsOverhead(b *testing.B) {
	d := parallelBenchData(b)
	var cfg core.FitConfig
	var events int64
	for _, o := range []Option{
		WithObjective(CVAccuracy),
		WithLearner(RidgeLearner(1e-2)),
		WithKernelFamily(RBFKernels(1.0)),
		WithCombiner(CombineSum),
		WithFolds(4),
		WithCVSeed(1),
		WithProgress(func(Event) { events++ }),
	} {
		o(&cfg)
	}
	e, err := mkl.NewEvaluator(d, cfg.MKL)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.SetContext(ctx)
	emit := cfg.MKL.Progress
	p := d.ViewPartition()
	want, err := e.Score(p) // warm the Gram-block cache and scratch
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ClearScoreCache()
		s, err := e.Score(p)
		if err != nil {
			b.Fatal(err)
		}
		if s != want {
			b.Fatalf("score drifted across iterations: %v != %v", s, want)
		}
		emit(Event{
			Kind: EventCandidateEvaluated, Time: time.Now(),
			Partition: p, Score: s, Best: p, BestScore: s, Evaluations: i,
		})
	}
	b.StopTimer()
	if events != int64(b.N) {
		b.Fatalf("progress callback fired %d times over %d iterations", events, b.N)
	}
}

// BenchmarkScore_ServeBatch measures one steady-state inference batch the
// serving stack executes per coalesced /predict batch: a 64-row vectorized
// cross-Gram against the training rows plus one matrix-vector product, in
// reused predictor scratch (internal/model.Predictor — the engine under
// internal/serve's worker pool).
func BenchmarkScore_ServeBatch(b *testing.B) {
	d := parallelBenchData(b)
	p := d.ViewPartition()
	k := kernel.FromPartition(p, kernel.RBFFactory(1.0), kernel.CombineSum)
	m, err := (kernelmachine.Ridge{}).Train(kernel.Gram(k, d.X), d.Y)
	if err != nil {
		b.Fatal(err)
	}
	df := m.(kernelmachine.DualForm)
	spec, err := kernel.ToSpec(k)
	if err != nil {
		b.Fatal(err)
	}
	art := &model.Artifact{
		LearnerKind: model.LearnerRidge,
		Partition:   p,
		KernelSpec:  spec,
		TrainX:      d.Matrix(),
		Coeff:       df.Coefficients(),
		Bias:        df.Bias(),
	}
	pred, err := model.NewPredictor(art)
	if err != nil {
		b.Fatal(err)
	}
	batch := d.X[:64]
	var scores []float64
	if scores, err = pred.ScoresInto(scores, batch); err != nil {
		b.Fatal(err) // warm the scratch before timing
	}
	want := scores[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores, err = pred.ScoresInto(scores, batch)
		if err != nil {
			b.Fatal(err)
		}
		if scores[0] != want {
			b.Fatalf("score drifted across iterations: %v != %v", scores[0], want)
		}
	}
}

// serveBenchArtifact builds the same deployable artifact
// BenchmarkScore_ServeBatch scores, for registering under multiple model
// ids.
func serveBenchArtifact(b *testing.B) (*model.Artifact, *dataset.Dataset) {
	b.Helper()
	d := parallelBenchData(b)
	p := d.ViewPartition()
	k := kernel.FromPartition(p, kernel.RBFFactory(1.0), kernel.CombineSum)
	m, err := (kernelmachine.Ridge{}).Train(kernel.Gram(k, d.X), d.Y)
	if err != nil {
		b.Fatal(err)
	}
	df := m.(kernelmachine.DualForm)
	spec, err := kernel.ToSpec(k)
	if err != nil {
		b.Fatal(err)
	}
	return &model.Artifact{
		LearnerKind: model.LearnerRidge,
		Partition:   p,
		KernelSpec:  spec,
		TrainX:      d.Matrix(),
		Coeff:       df.Coefficients(),
		Bias:        df.Bias(),
	}, d
}

// benchServeMultiModel measures one end-to-end ScoreBatch request through
// the multi-model serving stack — admission, per-model routing, the
// pipeline queue, and a worker scoring an 8-row batch — round-robined
// across n registered models. Compare _2 with _8 to see what fleet width
// costs per request (it should be flat: routing is one map lookup plus an
// atomic pointer load). Immediate flush and one worker per model keep
// allocs/op deterministic for the bench-json regression gate.
func benchServeMultiModel(b *testing.B, n int) {
	art, d := serveBenchArtifact(b)
	reg := NewServeRegistry()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = "m" + string(rune('0'+i))
		if err := reg.Load(ids[i], art); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := Serve(context.Background(), reg, WithImmediateFlush(), WithWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	batch := d.X[:8]
	want, err := srv.ScoreBatch(ids[0], batch) // warm every pipeline's scratch
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range ids[1:] {
		if _, err := srv.ScoreBatch(id, batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores, err := srv.ScoreBatch(ids[i%n], batch)
		if err != nil {
			b.Fatal(err)
		}
		if scores[0] != want[0] {
			b.Fatalf("score drifted across iterations: %v != %v", scores[0], want[0])
		}
	}
}

func BenchmarkServe_MultiModel2(b *testing.B) { benchServeMultiModel(b, 2) }
func BenchmarkServe_MultiModel8(b *testing.B) { benchServeMultiModel(b, 8) }

func benchCatalogue(b *testing.B, workers int) {
	// Mirror cmd/iotml's `run all`: the catalogue level gets the whole
	// budget and rows inside each experiment run sequentially, so the
	// benchmark measures the configuration the CLI actually ships.
	experiments.SetParallelism(1)
	defer experiments.SetParallelism(0)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCatalogue(true, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// --- approximate Gram engine at scale (ISSUE 7 / ROADMAP item 1) ---
//
// BenchmarkGramApprox_* measures the low-rank engine against the exact
// path at n ∈ {1k, 10k}: an exhaustive cone over a 5-feature synthetic
// workload under the alignment objective (the objective whose exact twin
// is still affordable at 1k for a same-workload comparison; 10k runs
// approx-only — the exact cone there is exactly the O(n²) wall the engine
// removes). Joined into BENCH_gram.json by `make bench-json` and gated by
// -fail-on-regress like every other suite.

// gramApproxData synthesizes the n×5 two-class workload the approx benches
// and the budgeted-search acceptance test share.
func gramApproxData(n int) *dataset.Dataset {
	const m = 5
	rng := stats.NewRNG(11)
	d := &dataset.Dataset{}
	for i := 0; i < n; i++ {
		y := 1
		if rng.Float64() < 0.5 {
			y = -1
		}
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			if j < (m+1)/2 {
				row[j] = float64(y)*0.8 + rng.NormFloat64()*0.5
			} else {
				row[j] = rng.NormFloat64()
			}
		}
		d.X = append(d.X, row)
		d.Y = append(d.Y, y)
	}
	return d
}

func benchGramApproxCone(b *testing.B, n int, mode mkl.GramMode, rank int) {
	d := gramApproxData(n)
	seed := partition.Coarsest(5)
	for i := 0; i < b.N; i++ {
		e, err := mkl.NewEvaluator(d, mkl.Config{
			Objective: mkl.KernelAlignment, Seed: 1, Parallelism: 1,
			GramMode: mode, GramRank: rank,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := mkl.ExhaustiveCone(e, seed)
		if err != nil {
			b.Fatal(err)
		}
		if res.Evaluations != 52 { // Bell(5) candidates per cone
			b.Fatalf("cone evaluated %d candidates, want 52", res.Evaluations)
		}
	}
}

// --- numeric backends (ISSUE 9 / ROADMAP item 4) ---
//
// BenchmarkBackend_* measures the three numeric backends on the same
// n=1k 5-feature cone: the exact f64 reference, the f32 fast path (f32
// storage, f64 accumulation — the headline is F32 beating F64 on memory
// traffic), and the Nyström approx backend re-mounted behind
// Config.Backend. Same workload and cone as BenchmarkGramApprox_* so the
// two suites stay comparable in BENCH_gram.json.

func benchBackendCone(b *testing.B, n int, backend engine.Backend) {
	d := gramApproxData(n)
	seed := partition.Coarsest(5)
	for i := 0; i < b.N; i++ {
		e, err := mkl.NewEvaluator(d, mkl.Config{
			Objective: mkl.KernelAlignment, Seed: 1, Parallelism: 1,
			Backend: backend,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := mkl.ExhaustiveCone(e, seed)
		if err != nil {
			b.Fatal(err)
		}
		if res.Evaluations != 52 { // Bell(5) candidates per cone
			b.Fatalf("cone evaluated %d candidates, want 52", res.Evaluations)
		}
	}
}

func BenchmarkBackend_F64Cone1k(b *testing.B)    { benchBackendCone(b, 1000, engine.Float64) }
func BenchmarkBackend_F32Cone1k(b *testing.B)    { benchBackendCone(b, 1000, engine.Float32) }
func BenchmarkBackend_ApproxCone1k(b *testing.B) { benchBackendCone(b, 1000, engine.Nystrom(32)) }

func BenchmarkGramApprox_Exact1k(b *testing.B) { benchGramApproxCone(b, 1000, mkl.GramExact, 0) }
func BenchmarkGramApprox_Nystrom1k(b *testing.B) {
	benchGramApproxCone(b, 1000, mkl.GramNystrom, 32)
}
func BenchmarkGramApprox_RFF1k(b *testing.B) { benchGramApproxCone(b, 1000, mkl.GramRFF, 64) }
func BenchmarkGramApprox_Nystrom10k(b *testing.B) {
	benchGramApproxCone(b, 10000, mkl.GramNystrom, 32)
}
