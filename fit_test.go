package iotml

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

func publicFitData(t testing.TB, seed int64) *Dataset {
	t.Helper()
	cfg := DefaultBiometricConfig()
	cfg.N = 80
	d := SyntheticBiometric(cfg, NewRNG(seed))
	d.Standardize()
	return d
}

// TestFitDefaultsMatchDeprecatedEntryPoint: the public compat contract —
// Fit(ctx, d) with default options selects exactly what
// PartitionDrivenMKL(d, FitConfig{}) selects. (The full strategy × worker
// matrix runs in internal/core's TestFitMatchesPartitionDrivenMKL.)
func TestFitDefaultsMatchDeprecatedEntryPoint(t *testing.T) {
	d := publicFitData(t, 1)
	// (Deprecated-use exemption: same-package tests may exercise the shim.)
	old, err := PartitionDrivenMKL(d, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Fit(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Best.Equal(old.Best) || got.Score != old.Score || got.Evaluations != old.Evaluations {
		t.Fatalf("Fit selected (%v, %v, %d evals), PartitionDrivenMKL (%v, %v, %d evals)",
			got.Best, got.Score, got.Evaluations, old.Best, old.Score, old.Evaluations)
	}
}

// TestFitOptionsApply: options reach the engine — the progress stream
// fires, parallelism keeps the selection identical, and the option-built
// configuration matches the equivalent struct configuration.
func TestFitOptionsApply(t *testing.T) {
	d := publicFitData(t, 2)
	var events, improved int
	res, err := Fit(context.Background(), d,
		WithObjective(KernelAlignment),
		WithKernelFamily(RBFKernels(1.0)),
		WithCombiner(CombineSum),
		WithLearner(RidgeLearner(1e-2)),
		WithFolds(4),
		WithCVSeed(1),
		WithParallelism(2),
		WithProgress(func(ev Event) {
			events++
			if ev.Kind == EventBestImproved {
				improved++
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 || improved == 0 {
		t.Fatalf("progress stream silent: %d events, %d improvements", events, improved)
	}
	seq, err := Fit(context.Background(), d,
		WithObjective(KernelAlignment), WithCVSeed(1), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Equal(seq.Best) || res.Score != seq.Score {
		t.Fatalf("parallel fit (%v, %v) != sequential fit (%v, %v)", res.Best, res.Score, seq.Best, seq.Score)
	}
}

// TestFitCancellationPublicAPI: cancelling the context mid-fit returns the
// partial result with ctx.Err().
func TestFitCancellationPublicAPI(t *testing.T) {
	d := publicFitData(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	res, err := Fit(ctx, d, WithParallelism(1), WithProgress(func(ev Event) {
		if ev.Kind == EventCandidateEvaluated {
			if n++; n == 2 {
				cancel()
			}
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Evaluations == 0 {
		t.Fatal("cancelled fit returned no partial progress")
	}
}

// TestFitCSVRoundTripReproducesSelection is the real-data acceptance
// criterion: WriteCSV → ReadCSV → Fit reproduces the synthetic-workload
// selection exactly (same partition, same score to the last bit), because
// the CSV round trip preserves every float bit-for-bit.
func TestFitCSVRoundTripReproducesSelection(t *testing.T) {
	d := publicFitData(t, 4)
	want, err := Fit(context.Background(), d, WithCVSeed(1))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadCSV(&buf, d.CSVSchema())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Fit(context.Background(), rt, WithCVSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Best.Equal(want.Best) || got.Score != want.Score || got.Evaluations != want.Evaluations {
		t.Fatalf("round-tripped fit selected (%v, %v, %d evals), original (%v, %v, %d evals)",
			got.Best, got.Score, got.Evaluations, want.Best, want.Score, want.Evaluations)
	}
	if !got.Seed.Equal(want.Seed) {
		t.Fatalf("round-tripped seed %v, original %v", got.Seed, want.Seed)
	}
}

// TestFitFromJSONL: the JSONL path feeds Fit end to end as well.
func TestFitFromJSONL(t *testing.T) {
	in := bytes.NewBufferString(`{"x0": 1.2, "x1": -0.4, "x2": 0.1, "label": 1}
{"x0": -1.1, "x1": 0.3, "x2": -0.2, "label": -1}
{"x0": 0.9, "x1": -0.2, "x2": 0.4, "label": 1}
{"x0": -1.3, "x1": 0.5, "x2": 0.2, "label": -1}
{"x0": 1.1, "x1": -0.6, "x2": -0.1, "label": 1}
{"x0": -0.8, "x1": 0.1, "x2": 0.3, "label": -1}
{"x0": 1.4, "x1": -0.5, "x2": 0.0, "label": 1}
{"x0": -1.0, "x1": 0.4, "x2": -0.3, "label": -1}
`)
	d, err := ReadJSONL(in, Schema{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fit(context.Background(), d, WithObjective(KernelAlignment), WithFolds(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.N() != 3 {
		t.Fatalf("best partition over %d features, want 3", res.Best.N())
	}
}
