// Scale: fit at n = 10,000 — two orders of magnitude past the exact
// engine's comfort zone — with the approximate Gram backend and the
// budgeted search: candidates are scored on low-rank Nyström factors
// (never materializing an n×n Gram per candidate), the top survivors are
// re-scored exactly, and the winning configuration is retrained exactly
// and saved as a deployable artifact.
//
// The phase timings printed at the end are the point of the example: the
// lattice sweep is cheap under the approximation, and the one unavoidable
// exact computation left is the deployment fit of the single selected
// configuration.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	iotml "repro"
)

func main() {
	// Full scale is n=10k with per-block rank 256; the smoke-test workload
	// (see examples_smoke_test.go) shrinks both so the example stays in
	// the regular suite.
	n, rank := 10000, 256
	if os.Getenv("IOTML_EXAMPLE_TINY") != "" {
		n, rank = 400, 32
	}

	// 1. A synthetic two-class workload: five features, the first three
	// carrying signal and the last two pure noise — large enough that one
	// exact Gram matrix is n² = 100M entries (800 MB) at full scale.
	train := synth(n, 11)
	fmt.Printf("workload: %d instances, %d features (exact Gram would be %d MB per candidate)\n",
		train.N(), train.D(), 8*n*n/(1<<20))

	// 2. Budgeted approximate fit: the chain search scores every candidate
	// on Nyström factors (rank 256 per block), then the top 2 survivors
	// are re-scored on exact Gram matrices, which decide the selection.
	t0 := time.Now()
	res, err := iotml.Fit(context.Background(), train,
		iotml.WithObjective(iotml.KernelAlignment),
		iotml.WithGramApprox(iotml.GramNystrom, rank),
		iotml.WithBudget(2),
		iotml.WithProgress(func(ev iotml.Event) {
			if ev.Kind == iotml.EventBestImproved {
				fmt.Printf("  progress: best improved to %.4f at %s (%d evaluations)\n",
					ev.BestScore, ev.Best, ev.Evaluations)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	searchWall := time.Since(t0)
	fmt.Printf("selected kernel partition: %s (alignment %.4f, %d evaluations, %v)\n",
		res.Best, res.Score, res.Evaluations, searchWall.Round(time.Millisecond))

	// 3. Deployment: retrain the selected configuration exactly — the one
	// O(n²) assembly + O(n³) solve the budgeted search cannot avoid, paid
	// once instead of once per lattice candidate — and persist it.
	fmt.Println("deployment fit (exact, the expensive step at this scale)...")
	t0 = time.Now()
	art, err := res.Artifact()
	if err != nil {
		log.Fatal(err)
	}
	deployWall := time.Since(t0)

	dir, err := os.MkdirTemp("", "iotml-scale")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.iotml")
	if err := art.SaveFile(path); err != nil {
		log.Fatal(err)
	}

	// 4. Round-trip: reload the artifact and score a few training rows, as
	// `iotml predict` / `iotml serve` would.
	loaded, err := iotml.LoadArtifact(path)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := iotml.NewPredictor(loaded)
	if err != nil {
		log.Fatal(err)
	}
	scores, err := pred.ScoresInto(nil, train.X[:4])
	if err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifact: %d KB on disk, first scores after reload: %.3f %.3f %.3f %.3f\n",
		fi.Size()/1024, scores[0], scores[1], scores[2], scores[3])
	fmt.Printf("wall clock: approximate search %v, exact deployment fit %v\n",
		searchWall.Round(time.Millisecond), deployWall.Round(time.Millisecond))
}

// synth builds the n×5 two-class workload: features 1–3 separate the
// classes, features 4–5 are noise the search should refuse to mix in.
func synth(n int, seed int64) *iotml.Dataset {
	rng := iotml.NewRNG(seed)
	d := &iotml.Dataset{}
	for i := 0; i < n; i++ {
		y := 1
		if rng.Float64() < 0.5 {
			y = -1
		}
		row := make([]float64, 5)
		for j := range row {
			if j < 3 {
				row[j] = float64(y)*0.8 + rng.NormFloat64()*0.5
			} else {
				row[j] = rng.NormFloat64()
			}
		}
		d.X = append(d.X, row)
		d.Y = append(d.Y, y)
	}
	return d
}
