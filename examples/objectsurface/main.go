// Objectsurface: the paper's second motivating example — "the surface of a
// physical object can be represented by its color and texture attributes,
// which correspond to two perceptually separate subsets of features". The
// texture class signal is a joint tilt of the band-energy profile, so
// reading the facet as one block is essential, and the correlation-driven
// dendrogram chain finds the facets where the marginal-alignment chain
// cannot.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/mkl"
	"repro/internal/partition"
	"repro/internal/stats"
)

func main() {
	cfg := dataset.DefaultSurfaceConfig()
	if os.Getenv("IOTML_EXAMPLE_TINY") != "" {
		cfg.N = 50 // smoke-test workload (see examples_smoke_test.go)
	}
	train := dataset.SyntheticObjectSurface(cfg, stats.NewRNG(31))
	train.Standardize()
	test := dataset.SyntheticObjectSurface(cfg, stats.NewRNG(32))
	test.Standardize()

	fmt.Printf("object-surface workload: %d color + %d texture + %d background features\n\n",
		cfg.ColorD, cfg.TexureD, cfg.BackgroundD)

	e, err := mkl.NewEvaluator(train, mkl.Config{Objective: mkl.CVAccuracy, Folds: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	seed := partition.Coarsest(train.D())

	type entry struct {
		name string
		run  func() (*mkl.Result, error)
	}
	fmt.Printf("%-24s %-44s %8s %8s\n", "strategy", "partition", "cv", "holdout")
	for _, en := range []entry{
		{"global kernel", func() (*mkl.Result, error) { return mkl.SingleGlobalKernel(e) }},
		{"view oracle", func() (*mkl.Result, error) { return mkl.ViewOracle(e) }},
		{"canonical chain", func() (*mkl.Result, error) { return mkl.ChainSearch(e, seed, mkl.BestOfChain) }},
		{"dendrogram chain", func() (*mkl.Result, error) {
			return mkl.DendrogramSearch(e, cluster.AverageLinkage, mkl.BestOfChain)
		}},
		{"beam (3 chains)", func() (*mkl.Result, error) { return mkl.ChainBeamSearch(e, seed, 3) }},
	} {
		res, err := en.run()
		if err != nil {
			log.Fatal(err)
		}
		acc, err := mkl.HoldoutAccuracy(train, test, res.Best, mkl.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %-44s %8.3f %8.3f\n", en.name, res.Best, res.Score, acc)
	}

	// Show the feature dendrogram itself: the chain of partitions the
	// clustering walks, with merge heights.
	den, err := cluster.FeatureDendrogram(train.X, cluster.AverageLinkage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfeature dendrogram (ref [8]: a dendrogram is a chain in the partition lattice):")
	for i, h := range den.Heights {
		if i >= 6 {
			fmt.Printf("  ... %d more merges\n", len(den.Heights)-i)
			break
		}
		fmt.Printf("  merge %d at height %.3f -> %s\n", i+1, h, den.Chain[i+1])
	}
}
