// Facetlearn: the full Section III story on faceted biometric data —
// compare every lattice exploration strategy and baseline, report the
// evaluation cost each one pays, and show the Bell-number wall the paper's
// linear chain search avoids.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/combinat"
	"repro/internal/dataset"
	"repro/internal/mkl"
	"repro/internal/partition"
	"repro/internal/stats"
)

func main() {
	cfg := dataset.DefaultBiometricConfig()
	if os.Getenv("IOTML_EXAMPLE_TINY") != "" {
		cfg.N = 50 // smoke-test workload (see examples_smoke_test.go)
	}
	train := dataset.SyntheticBiometric(cfg, stats.NewRNG(11))
	train.Standardize()
	test := dataset.SyntheticBiometric(cfg, stats.NewRNG(12))
	test.Standardize()

	fmt.Printf("faceted workload: %d features in %d facets, %d train / %d test\n\n",
		train.D(), len(train.Views), train.N(), test.N())

	e, err := mkl.NewEvaluator(train, mkl.Config{Objective: mkl.CVAccuracy, Folds: 4, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	seed := partition.Coarsest(train.D())

	type entry struct {
		name string
		run  func() (*mkl.Result, error)
	}
	entries := []entry{
		{"single global kernel", func() (*mkl.Result, error) { return mkl.SingleGlobalKernel(e) }},
		{"uniform per-feature", func() (*mkl.Result, error) { return mkl.UniformPerFeature(e) }},
		{"view oracle (truth)", func() (*mkl.Result, error) { return mkl.ViewOracle(e) }},
		{"chain search (paper)", func() (*mkl.Result, error) { return mkl.ChainSearch(e, seed, mkl.BestOfChain) }},
		{"chain, first-improve", func() (*mkl.Result, error) { return mkl.ChainSearch(e, seed, mkl.FirstImprovement) }},
		{"greedy refinement", func() (*mkl.Result, error) { return mkl.GreedyRefine(e, seed) }},
	}
	fmt.Printf("%-22s %-28s %8s %8s %6s\n", "strategy", "partition", "cv", "holdout", "evals")
	for _, en := range entries {
		res, err := en.run()
		if err != nil {
			log.Fatal(err)
		}
		acc, err := mkl.HoldoutAccuracy(train, test, res.Best, mkl.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %-28s %8.3f %8.3f %6d\n", en.name, res.Best, res.Score, acc, res.Evaluations)
	}

	fmt.Println("\nthe Bell-number wall (exhaustive cone cost for m free features):")
	for m := 4; m <= 16; m += 2 {
		fmt.Printf("  m = %2d: chain search %2d evals, exhaustive %s\n",
			m, m, combinat.Bell(m))
	}
}
