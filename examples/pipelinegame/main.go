// Pipelinegame: the Section IV adversarial story — build the preprocessor
// vs analytics game from real pipeline runs, compare the single-player
// optimum with the Nash and sequential imperfect-information outcomes, and
// recover the GAN zero-sum special case by fictitious play.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/adversarial"
	"repro/internal/game"
)

func main() {
	horizon, ganRounds := 200.0, []int{10, 100, 1000, 10000}
	if os.Getenv("IOTML_EXAMPLE_TINY") != "" {
		// Smoke-test workload (see examples_smoke_test.go).
		horizon, ganRounds = 50, []int{10, 100}
	}
	fmt.Println("=== preprocessor vs analytics pipeline game ===")
	pg, err := adversarial.BuildPipelineGame(adversarial.PipelineGameConfig{Seed: 9, Horizon: horizon})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s", "quality matrix")
	for _, a := range pg.AnalyticOps {
		fmt.Printf(" %16s", a.Name)
	}
	fmt.Println()
	for i, po := range pg.PreprocOps {
		fmt.Printf("%-20s", po.Name)
		for j := range pg.AnalyticOps {
			fmt.Printf(" %16.3f", pg.Quality[i][j])
		}
		fmt.Println()
	}

	for _, eps := range []float64{0.0, 0.25, 1.0} {
		out, err := pg.Analyze(eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nsignal noise eps = %.2f\n", eps)
		fmt.Printf("  single-player optimum: (%s, %s), welfare %.3f\n",
			pg.PreprocOps[out.OptRow].Name, pg.AnalyticOps[out.OptCol].Name, out.OptWelfare)
		fmt.Printf("  simultaneous Nash:     (%s, %s), welfare %.3f (converged=%v)\n",
			pg.PreprocOps[out.NashRow].Name, pg.AnalyticOps[out.NashCol].Name,
			out.NashWelfare, out.NashConverged)
		fmt.Printf("  sequential leader:     %s, welfare %.3f\n",
			pg.PreprocOps[out.SeqLeader].Name, out.SeqWelfare)
		fmt.Printf("  price of misalignment: %.3f\n", out.PriceOfMisalignment)
	}

	fmt.Println("\n=== zero-sum GAN game (ref [5]) ===")
	gg, err := adversarial.NewGANGame(0,
		[]float64{-2, -1, -0.5, 0, 0.5, 1, 2},
		[]float64{-1.5, -1, -0.5, 0, 0.5, 1, 1.5})
	if err != nil {
		log.Fatal(err)
	}
	for _, rounds := range ganRounds {
		genErr, discVal, _ := gg.Equilibrium(rounds)
		fmt.Printf("  %6d rounds: discriminator value %.4f, generator E|θ-θ*| %.4f\n",
			rounds, discVal, genErr)
	}
	fmt.Println("  (value → 0.5 and θ-error → 0: the generator matches the data)")

	fmt.Println("\n=== Pareto view of the strategy pairs ===")
	var pts []game.Point
	for i, po := range pg.PreprocOps {
		for j, ao := range pg.AnalyticOps {
			pts = append(pts, game.Point{
				Label:  po.Name + "+" + ao.Name,
				Values: []float64{pg.Game.A[i][j], pg.Game.B[i][j]},
			})
		}
	}
	for _, p := range game.ParetoFront(pts) {
		fmt.Printf("  non-dominated: %-32s A=%.3f B=%.3f\n", p.Label, p.Values[0], p.Values[1])
	}
}
