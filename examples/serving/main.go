// Serving: the train-once/serve-forever lifecycle at fleet scale — fit two
// partition-driven MKL models, persist them as versioned artifacts
// (internal/model), serve both from one multi-model server with per-model
// routing (internal/serve), then refresh one artifact on disk and watch
// the server hot-swap it atomically with zero downtime.
//
// The same flow on the command line:
//
//	iotml fit -o models/face.iotml -workload biometric -seed 1
//	iotml fit -o models/gait.iotml -workload biometric -seed 2
//	iotml serve -models models/ -default face -addr :8080 &
//	curl -s localhost:8080/v1/models
//	curl -s -X POST localhost:8080/v1/models/gait/predict -d '{"instances": [[...]]}'
//	iotml fit -o models/face.iotml -seed 3   # watched dir: hot-swaps live
//	curl -s localhost:8080/v1/metrics
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	iotml "repro"
)

// fitArtifact fits one model on the faceted biometric workload and returns
// its deployable artifact.
func fitArtifact(ctx context.Context, seed int64, n int) (*iotml.Artifact, error) {
	cfg := iotml.DefaultBiometricConfig()
	cfg.N = n
	train := iotml.SyntheticBiometric(cfg, iotml.NewRNG(seed))
	train.Standardize()
	res, err := iotml.Fit(ctx, train, iotml.WithFolds(4), iotml.WithCVSeed(1))
	if err != nil {
		return nil, err
	}
	fmt.Printf("fitted: seed %d -> partition %s (cv score %.3f)\n", seed, res.Best, res.Score)
	return res.Artifact()
}

// saveAtomic writes the artifact next to path and renames it into place,
// so the server's directory watcher never sees a half-written file.
func saveAtomic(art *iotml.Artifact, path string) error {
	tmp := path + ".tmp"
	if err := art.SaveFile(tmp); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func main() {
	ctx := context.Background()
	n := 120
	if os.Getenv("IOTML_EXAMPLE_TINY") != "" {
		n = 40 // smoke-test workload (see examples_smoke_test.go)
	}

	// 1. Offline: fit a two-model fleet — different seeds stand in for the
	// per-sensor models a real deployment would train.
	dir, err := os.MkdirTemp("", "serving-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	for _, m := range []struct {
		id   string
		seed int64
	}{{"face", 1}, {"gait", 2}} {
		art, err := fitArtifact(ctx, m.seed, n)
		if err != nil {
			log.Fatal(err)
		}
		if err := saveAtomic(art, filepath.Join(dir, m.id+".iotml")); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("saved:  2 artifacts under %s\n", dir)

	// 2. Online: serve the whole directory. WithModelDir loads every
	// *.iotml (model id = file name) and keeps polling it, so an artifact
	// rewritten on disk is hot-swapped in atomically while the previous
	// model drains. httptest stands in for a real listener so the example
	// is self-contained; `iotml serve -models` binds a real port.
	reg := iotml.NewServeRegistry()
	srv, err := iotml.Serve(ctx, reg,
		iotml.WithModelDir(dir),
		iotml.WithReloadInterval(100*time.Millisecond),
		iotml.WithDefaultModel("face"),
		iotml.WithWorkers(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	fmt.Printf("serving: %s (models %v, default %q)\n", hs.URL, reg.IDs(), srv.DefaultModel())

	// 3. Route: each model answers under /v1/models/{id}/predict; the
	// legacy /predict alias resolves to the default model.
	query := queryRow(n)
	for _, id := range reg.IDs() {
		pr := mustPredict(hs.URL+"/v1/models/"+id+"/predict", query)
		fmt.Printf("predict: model %-4s -> score %+.4f label %+d\n", id, pr.Scores[0], pr.Labels[0])
	}
	legacy := mustPredict(hs.URL+"/predict", query)
	fmt.Printf("predict: legacy /predict (alias of %q) -> score %+.4f\n", srv.DefaultModel(), legacy.Scores[0])

	// 4. Hot-swap: refit the face model and overwrite its artifact. The
	// watcher fingerprints the new file and swaps it in atomically — the
	// fingerprint flips, traffic keeps flowing, nothing is dropped.
	before := fingerprint(hs.URL, "face")
	refreshed, err := fitArtifact(ctx, 3, n)
	if err != nil {
		log.Fatal(err)
	}
	if err := saveAtomic(refreshed, filepath.Join(dir, "face.iotml")); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for fingerprint(hs.URL, "face") == before {
		if time.Now().After(deadline) {
			log.Fatal("hot-swap did not land")
		}
		time.Sleep(20 * time.Millisecond)
	}
	after := mustPredict(hs.URL+"/v1/models/face/predict", query)
	fmt.Printf("swap:    face fingerprint %s -> %s (served score now %+.4f)\n",
		before, fingerprint(hs.URL, "face"), after.Scores[0])

	// 5. Observe: per-model counters in the Prometheus text exposition.
	resp, err := http.Get(hs.URL + "/v1/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "iotml_requests_total") || strings.HasPrefix(line, "iotml_swaps_total") {
			fmt.Printf("metrics: %s\n", line)
		}
	}
	tot := srv.Totals()
	fmt.Printf("totals:  %d requests, %d instances in %d batches, %d swaps\n",
		tot.Requests, tot.Instances, tot.Batches, tot.Swaps)
}

// queryRow builds one standardized query instance the way the workload's
// clients would.
func queryRow(n int) [][]float64 {
	cfg := iotml.DefaultBiometricConfig()
	cfg.N = n
	d := iotml.SyntheticBiometric(cfg, iotml.NewRNG(7))
	d.Standardize()
	return d.X[:1]
}

func mustPredict(url string, instances [][]float64) iotml.PredictResponse {
	raw, err := json.Marshal(iotml.PredictRequest{Instances: instances})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		log.Fatalf("%s: status %d: %s", url, resp.StatusCode, buf.String())
	}
	var pr iotml.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		log.Fatal(err)
	}
	return pr
}

func fingerprint(base, id string) string {
	resp, err := http.Get(base + "/v1/models/" + id)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var mi struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mi); err != nil {
		log.Fatal(err)
	}
	return mi.Fingerprint
}
