// Serving: the train-once/serve-forever lifecycle end to end — fit a
// partition-driven MKL model, persist it as a versioned artifact
// (internal/model), serve it over HTTP with micro-batched inference
// (internal/serve), and query it like a client would.
//
// The same flow on the command line:
//
//	iotml fit -o model.iotml -workload biometric -seed 1
//	iotml serve -m model.iotml -addr :8080 &
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/predict -d '{"instances": [[...]]}'
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	iotml "repro"
	"repro/internal/model"
	"repro/internal/serve"
)

func main() {
	// 1. Offline: fit on the faceted biometric workload through the
	// context-first Fit API. ctx bounds the whole fit and, passed on to
	// serve.NewContext below, ties the server's lifecycle to the same
	// cancellation plumbing `iotml serve` drives from SIGINT/SIGTERM.
	ctx := context.Background()
	cfg := iotml.DefaultBiometricConfig()
	cfg.N = 120
	if os.Getenv("IOTML_EXAMPLE_TINY") != "" {
		cfg.N = 40 // smoke-test workload (see examples_smoke_test.go)
	}
	train := iotml.SyntheticBiometric(cfg, iotml.NewRNG(1))
	train.Standardize()
	res, err := iotml.Fit(ctx, train, iotml.WithFolds(4), iotml.WithCVSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted: partition %s (cv score %.3f)\n", res.Best, res.Score)

	// 2. Persist: package the deployment model as a versioned artifact.
	art, err := res.Artifact()
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "serving-example.iotml")
	if err := art.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved:  %s (%d bytes, format v%d, learner %s)\n",
		path, info.Size(), model.FormatVersion, art.LearnerKind)

	// 3. Online: load the artifact (a fresh process would use
	// model.LoadFile) and serve it. httptest stands in for a real listener
	// so the example is self-contained; `iotml serve` binds a real port.
	loaded, err := model.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	// NewContext ties the server to ctx: cancelling it drains in-flight
	// micro-batches and stops the workers (what `iotml serve` does on
	// SIGINT/SIGTERM before exiting 0).
	srv, err := serve.NewContext(ctx, loaded, serve.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	fmt.Printf("serving: %s\n", hs.URL)

	// 4. Query: health, model metadata, and batched predictions.
	var health struct {
		Status  string `json:"status"`
		Learner string `json:"learner"`
	}
	mustGetJSON(hs.URL+"/healthz", &health)
	fmt.Printf("healthz: status=%s learner=%s\n", health.Status, health.Learner)

	var meta struct {
		Partition string `json:"partition"`
		Kernel    string `json:"kernel"`
		Dim       int    `json:"dim"`
	}
	mustGetJSON(hs.URL+"/model", &meta)
	fmt.Printf("model:   partition=%s dim=%d\n", meta.Partition, meta.Dim)

	req := serve.PredictRequest{Instances: train.X[:3]}
	raw, _ := json.Marshal(req)
	resp, err := http.Post(hs.URL+"/predict", "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var pr serve.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		log.Fatal(err)
	}
	for i, s := range pr.Scores {
		fmt.Printf("predict: instance %d -> score %+.4f label %+d (true %+d)\n",
			i, s, pr.Labels[i], train.Y[i])
	}
	m := srv.Snapshot()
	fmt.Printf("metrics: %d requests, %d instances in %d batches (last batch %dus)\n",
		m.Requests, m.Instances, m.Batches, m.LastBatchMicros)
}

func mustGetJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
