// Quickstart: generate a faceted IoT workload, run the paper's
// partition-driven multiple kernel learning end to end, and deploy the
// selected configuration — all through the public iotml API.
package main

import (
	"fmt"
	"log"
	"os"

	iotml "repro"
	"repro/internal/mkl"
)

func main() {
	// 1. A faceted workload: four facets (face, fingerprint, eeg, iris)
	// from four simulated sensors, the structure the paper's introduction
	// motivates.
	cfg := iotml.DefaultBiometricConfig()
	if os.Getenv("IOTML_EXAMPLE_TINY") != "" {
		cfg.N = 50 // smoke-test workload (see examples_smoke_test.go)
	}
	train := iotml.SyntheticBiometric(cfg, iotml.NewRNG(1))
	train.Standardize()
	test := iotml.SyntheticBiometric(cfg, iotml.NewRNG(2))
	test.Standardize()
	fmt.Printf("workload: %d train / %d test instances, %d features in %d facets\n",
		train.N(), test.N(), train.D(), len(train.Views))

	// 2. Partition-driven MKL: rough-set seeding + symmetric-chain search.
	res, err := iotml.PartitionDrivenMKL(train, iotml.FitConfig{
		MKL: mkl.Config{Objective: mkl.CVAccuracy, Folds: 4, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rough-set seed K = %v -> seed partition %s\n", res.SeedAttrs, res.Seed)
	fmt.Printf("selected kernel partition: %s (cv score %.3f, %d evaluations)\n",
		res.Best, res.Score, res.Evaluations)

	// 3. Deploy on held-out data and compare with the single global kernel.
	accBest, err := iotml.Deploy(train, test, res.Best, mkl.Config{})
	if err != nil {
		log.Fatal(err)
	}
	accGlobal, err := iotml.Deploy(train, test, iotml.CoarsestPartition(train.D()), mkl.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("holdout accuracy: partition-driven %.3f vs single global kernel %.3f\n",
		accBest, accGlobal)
}
