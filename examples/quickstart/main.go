// Quickstart: generate a faceted IoT workload, run the paper's
// partition-driven multiple kernel learning end to end with the
// context-first Fit API (functional options + live progress), and deploy
// the selected configuration — all through the public iotml API.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	iotml "repro"
)

func main() {
	// 1. A faceted workload: four facets (face, fingerprint, eeg, iris)
	// from four simulated sensors, the structure the paper's introduction
	// motivates.
	cfg := iotml.DefaultBiometricConfig()
	if os.Getenv("IOTML_EXAMPLE_TINY") != "" {
		cfg.N = 50 // smoke-test workload (see examples_smoke_test.go)
	}
	train := iotml.SyntheticBiometric(cfg, iotml.NewRNG(1))
	train.Standardize()
	test := iotml.SyntheticBiometric(cfg, iotml.NewRNG(2))
	test.Standardize()
	fmt.Printf("workload: %d train / %d test instances, %d features in %d facets\n",
		train.N(), test.N(), train.D(), len(train.Views))

	// 2. Partition-driven MKL: rough-set seeding + symmetric-chain search,
	// through the context-first Fit API. The context would let a caller
	// cancel or deadline the search; the progress option streams the
	// best-so-far state as the chain is walked.
	improvements := 0
	res, err := iotml.Fit(context.Background(), train,
		iotml.WithObjective(iotml.CVAccuracy),
		iotml.WithFolds(4),
		iotml.WithCVSeed(1),
		iotml.WithProgress(func(ev iotml.Event) {
			if ev.Kind == iotml.EventBestImproved {
				improvements++
				fmt.Printf("  progress: best improved to %.3f at %s (%d evaluations)\n",
					ev.BestScore, ev.Best, ev.Evaluations)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rough-set seed K = %v -> seed partition %s\n", res.SeedAttrs, res.Seed)
	fmt.Printf("selected kernel partition: %s (cv score %.3f, %d evaluations, %d improvements)\n",
		res.Best, res.Score, res.Evaluations, improvements)

	// 3. Deploy on held-out data and compare with the single global kernel.
	accBest, err := iotml.Deploy(train, test, res.Best, iotml.MKLConfig{})
	if err != nil {
		log.Fatal(err)
	}
	accGlobal, err := iotml.Deploy(train, test, iotml.CoarsestPartition(train.D()), iotml.MKLConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("holdout accuracy: partition-driven %.3f vs single global kernel %.3f\n",
		accBest, accGlobal)
}
