// Sensornet: the Section IV data-integration story — sample a
// desynchronized environmental sensor fleet, merge time-stamps into records
// "typically plagued by missing feature-values", prepare them through the
// pipeline, and print the uncertainty ledger that grounds (or breaks) the
// chain of trust.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/impute"
	"repro/internal/pipeline"
	"repro/internal/sensors"
	"repro/internal/stats"
)

func main() {
	samples := 240.0
	if os.Getenv("IOTML_EXAMPLE_TINY") != "" {
		samples = 60 // smoke-test workload (see examples_smoke_test.go)
	}
	for _, desync := range []float64{0.0, 0.5, 1.0} {
		fmt.Printf("=== fleet desynchronization %.1f ===\n", desync)
		fleet := sensors.EnvironmentalFleet(desync)
		streams, err := sensors.SampleFleet(fleet, samples, stats.NewRNG(5))
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range streams {
			fmt.Printf("  %-9s %-12s %4d readings\n", s.Device, s.Quantity, len(s.Readings))
		}

		// The tracked pipeline: merge, clean, interpolate with bias probing.
		p := &pipeline.Pipeline{Stages: []pipeline.Stage{
			pipeline.MergeStage{Streams: streams, Tolerance: 0.05},
			pipeline.CleanStage{ZThreshold: 4},
			pipeline.InterpolateStage{TrackBias: true},
		}}
		res, err := p.Run(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s", res.Ledger)
		fmt.Printf("  reconstruction RMSE vs ground truth: %.3f\n",
			pipeline.ReconstructionRMSE(res.Data, fleet))

		// The cheap pipeline: untracked mean imputation breaks the chain.
		cheap := &pipeline.Pipeline{Stages: []pipeline.Stage{
			pipeline.MergeStage{Streams: streams, Tolerance: 0.05},
			pipeline.ImputeStage{Imputer: impute.Mean{}, TrackBias: false},
		}}
		resCheap, err := cheap.Run(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncheap pipeline (untracked mean imputation):\n%s", resCheap.Ledger)
		fmt.Printf("  reconstruction RMSE vs ground truth: %.3f\n\n",
			pipeline.ReconstructionRMSE(resCheap.Data, fleet))
	}
}
