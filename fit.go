// The context-first fit API: Fit(ctx, data, options...) is the package's
// primary entry point. Functional options replace the nested FitConfig
// struct of the original API (which remains as a deprecated shim), the
// context cancels or deadlines the lattice search at candidate-evaluation
// granularity, and WithProgress streams the fit's event sequence for live
// display or machine-readable logging. (Package documentation lives in
// iotml.go.)

package iotml

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distsearch"
	"repro/internal/engine"
	"repro/internal/kernel"
	"repro/internal/kernelmachine"
	"repro/internal/mkl"
)

// Option configures one aspect of a Fit call. Options are applied in
// order, so a later option overrides an earlier one; the zero
// configuration (no options) reproduces the paper's defaults — rough-set
// seeding with K ≤ 2, chain search with the best-of-chain rule, RBF block
// kernels under the sum combiner, kernel ridge, 4-fold CV, parallel
// search across all cores.
type Option func(*core.FitConfig)

// WithStrategy selects the lattice exploration strategy (SearchChain,
// SearchChainFirstImprovement, SearchGreedy, SearchExhaustive).
func WithStrategy(s SearchStrategy) Option {
	return func(c *core.FitConfig) { c.Search = s }
}

// WithLearner selects the kernel machine trained inside cross-validation
// and deployed by FitResult.Artifact (see RidgeLearner, SVMLearner,
// PerceptronLearner).
func WithLearner(l Learner) Option {
	return func(c *core.FitConfig) { c.MKL.Trainer = l }
}

// WithKernelFamily selects the per-block kernel factory (see RBFKernels,
// LinearKernels, NormalizedKernels).
func WithKernelFamily(f KernelFamily) Option {
	return func(c *core.FitConfig) { c.MKL.Factory = f }
}

// WithCombiner selects how block kernels aggregate across partition
// blocks (CombineSum or CombineProduct).
func WithCombiner(cb Combiner) Option {
	return func(c *core.FitConfig) { c.MKL.Combiner = cb }
}

// WithFolds sets the cross-validation fold count (default 4).
func WithFolds(k int) Option {
	return func(c *core.FitConfig) { c.MKL.Folds = k }
}

// WithCVSeed seeds the cross-validation fold split (the fit is
// deterministic for a fixed seed at every parallelism setting).
func WithCVSeed(seed int64) Option {
	return func(c *core.FitConfig) { c.MKL.Seed = seed }
}

// WithParallelism bounds the search worker pool: 0 (the default) uses all
// cores, 1 forces the sequential path, n > 1 uses n workers. The selected
// partition, score, and progress stream are identical at every setting.
func WithParallelism(n int) Option {
	return func(c *core.FitConfig) { c.MKL.Parallelism = n }
}

// WithProgress streams the fit's progress events — seed selection, every
// candidate evaluated, best-so-far improvements, search and fit completion
// — to fn. fn runs on the goroutine driving the search, in deterministic
// order at every worker count; it must return quickly (the search blocks
// while it runs). The plumbing adds no allocations to the steady-state
// candidate-evaluation path.
func WithProgress(fn func(Event)) Option {
	return func(c *core.FitConfig) { c.MKL.Progress = fn }
}

// WithObjective selects the candidate-scoring objective: CVAccuracy (the
// faithful default) or KernelAlignment (the cheap proxy).
func WithObjective(o Objective) Option {
	return func(c *core.FitConfig) { c.MKL.Objective = o }
}

// WithSeedMaxK bounds the size of the rough-set-selected seed block K
// (default 2).
func WithSeedMaxK(k int) Option {
	return func(c *core.FitConfig) { c.SeedMaxK = k }
}

// WithExactGram forces every Gram matrix through the scalar pairwise
// path, for strict reproduction runs that must match the paper's
// arithmetic to the last bit (see mkl.Config.ExactGram).
func WithExactGram() Option {
	return func(c *core.FitConfig) { c.MKL.ExactGram = true }
}

// Backend selects the numeric backend of the lattice search (see
// WithBackend): Float64Backend is the bit-identical reference,
// Float32Backend the f32-storage fast path, NystromBackend/RFFBackend the
// low-rank approximations. The zero Backend is Float64Backend.
type Backend = engine.Backend

// Numeric backends for WithBackend.
var (
	// Float64Backend is the exact reference backend — the default, and
	// bit-identical to a fit that never mentions backends.
	Float64Backend = engine.Float64
	// Float32Backend stores Grams, Cholesky factors, and coefficients in
	// float32 while accumulating every inner loop in float64: roughly half
	// the memory traffic of the scoring loop, with assembled Gram entries
	// within 1e-4·max(1,|K|) of the reference elementwise and selections
	// bit-identical across worker counts.
	Float32Backend = engine.Float32
)

// NystromBackend returns the Nyström landmark backend with the given
// per-block rank (0 selects the default, 64) — WithBackend's spelling of
// WithGramApprox(GramNystrom, rank).
func NystromBackend(rank int) Backend { return engine.Nystrom(rank) }

// RFFBackend returns the random-Fourier-feature backend with the given
// per-block rank (0 selects the default, 64) — WithBackend's spelling of
// WithGramApprox(GramRFF, rank).
func RFFBackend(rank int) Backend { return engine.RFF(rank) }

// ParseBackend parses the CLI spelling of a backend — "exact", "f32",
// "nystrom[:rank]", or "rff[:rank]" — into the Backend WithBackend
// consumes. "auto" is rejected: resolve it with AutoBackend first.
func ParseBackend(s string) (Backend, error) { return engine.Parse(s) }

// WithBackend selects the numeric backend of the lattice search:
// Float64Backend (the default; bit-identical to every pre-backend fit),
// Float32Backend (f32 storage with f64 accumulation — the fast path for
// mid-sized dense workloads), or NystromBackend/RFFBackend (low-rank
// factor scoring for large n; combine with WithBudget to re-score top
// survivors exactly). The deployment fit behind Deploy/Artifact always
// stays exact float64 whatever backend scored the search. Approximate
// backends require the (default) sum combiner; Float32Backend and the
// approximate backends are mutually exclusive with WithExactGram.
//
// WithBackend and the deprecated WithGramApprox override each other in
// option order, last one wins.
func WithBackend(b Backend) Option {
	return func(c *core.FitConfig) {
		c.MKL.Backend = b
		c.MKL.GramMode, c.MKL.GramRank = GramExact, 0
	}
}

// AutoBackend picks a backend from the workload — the one-line selection
// facade: the exact reference while its O(n²) assembly is cheap, the f32
// fast path for mid-sized dense workloads, and Nyström factors (rank 256)
// beyond. The alignment objective stretches the exact backends further
// than cross-validated accuracy because its per-candidate cost is lower:
//
//	objective        Float64      Float32      NystromBackend(256)
//	KernelAlignment  n ≤ 2048     n ≤ 8192     larger
//	CVAccuracy       n ≤ 1024     n ≤ 4096     larger
//
// Typical use: iotml.Fit(ctx, d, iotml.WithBackend(iotml.AutoBackend(d, iotml.CVAccuracy))).
func AutoBackend(d *Dataset, obj Objective) Backend {
	return engine.Auto(d.N(), obj == KernelAlignment)
}

// WithGramApprox selects an approximate Gram backend for the lattice
// search: GramNystrom scores candidates on seeded landmark factors (exact
// to ≤1e-9 at rank = n), GramRFF on random-Fourier-feature factors for RBF
// blocks (Nyström fallback elsewhere). rank is the per-block rank —
// landmark or feature count — with 0 selecting the default (64). The
// deployment fit behind Deploy/Artifact always stays exact; combine with
// WithBudget to re-score the top survivors exactly before selecting.
// GramExact restores the default bit-identical path. Approximate modes
// require the (default) sum combiner and are mutually exclusive with
// WithExactGram.
//
// Deprecated: WithGramApprox is thin sugar over WithBackend —
// WithGramApprox(GramNystrom, r) ≡ WithBackend(NystromBackend(r)) and
// WithGramApprox(GramRFF, r) ≡ WithBackend(RFFBackend(r)), bit-identically
// (asserted in CI). It remains for source compatibility; new code should
// spell the backend.
func WithGramApprox(mode GramMode, rank int) Option {
	return func(c *core.FitConfig) {
		c.MKL.Backend = Backend{}
		c.MKL.GramMode = mode
		c.MKL.GramRank = rank
	}
}

// WithBudget enables the budgeted search mode on top of an approximate
// Gram backend: the whole lattice is scored with the cheap approximation
// and only the topK best distinct candidates are re-scored exactly, with
// the exact scores deciding the final selection (see mkl.BudgetedSearch).
// Values <= 0 disable re-scoring; without WithGramApprox the option has no
// effect.
func WithBudget(topK int) Option {
	return func(c *core.FitConfig) { c.MKL.BudgetTopK = topK }
}

// ParseGramMode parses the CLI spelling of a Gram backend — "exact",
// "nystrom[:rank]", or "rff[:rank]" — into the (mode, rank) pair
// WithGramApprox consumes.
func ParseGramMode(s string) (GramMode, int, error) { return mkl.ParseGramMode(s) }

// Distributed search: the coordinator/worker types of internal/distsearch.
type (
	// DistOptions configures a distributed lattice search: the worker
	// fleet, the serializable evaluator spec, and the robustness knobs
	// (per-shard deadline, retry budget, backoff policy).
	DistOptions = distsearch.Options
	// DistSpec is the serializable evaluator configuration coordinator
	// and workers expand identically (plain strings and numbers — the
	// wire form of the kernel/learner/CV choices).
	DistSpec = distsearch.Spec
)

// WithDistributedWorkers distributes candidate scoring across the worker
// processes in opts.Workers (each running `iotml search-worker`). The
// evaluator configuration is derived from opts.Spec on both sides of the
// wire, overriding WithLearner/WithKernelFamily/WithCombiner/WithFolds/
// WithCVSeed/WithObjective for this fit, so coordinator-local and remote
// scores agree by construction. The selected partition and score are
// bit-identical to an in-process fit with the same spec, at every fleet
// size and under worker failures: dead, hung, or corrupt-result workers
// are retried with jittered backoff, their shards re-dispatched to live
// peers, and an exhausted pool degrades to local in-process scoring. An
// empty worker list leaves the fit fully in-process.
func WithDistributedWorkers(opts DistOptions) Option {
	return func(c *core.FitConfig) {
		if len(opts.Workers) == 0 {
			c.Dist = nil
			return
		}
		c.Dist = &opts
	}
}

// WithConfig replaces the whole accumulated configuration — the escape
// hatch for callers migrating from the FitConfig struct API. Options after
// it apply on top.
func WithConfig(cfg FitConfig) Option {
	return func(c *core.FitConfig) { *c = cfg }
}

// Fit runs the paper's Section III procedure end to end on a faceted
// dataset: select the seed block K dynamically by rough-set approximation
// accuracy, form the two-block seed (K, S−K), and explore the partition
// lattice for the multiple-kernel configuration with the best validated
// performance.
//
// The context bounds the whole fit: cancellation or a deadline aborts the
// search within one candidate evaluation, drains the worker pool without
// leaking goroutines, and returns the partial FitResult accumulated so far
// (best-so-far configuration, score, evaluation count) alongside an error
// wrapping ctx.Err().
//
// With default options Fit is bit-identical to the deprecated
// PartitionDrivenMKL entry point (asserted in CI across strategies and
// worker counts).
func Fit(ctx context.Context, d *Dataset, opts ...Option) (*FitResult, error) {
	var cfg core.FitConfig
	for _, o := range opts {
		o(&cfg)
	}
	return core.Fit(ctx, d, cfg)
}

// Learners, kernel families, and combiners for the option catalogue.
type (
	// Learner trains a kernel machine from a Gram matrix and ±1 labels.
	Learner = kernelmachine.Trainer
	// KernelFamily builds the kernel for one block of features.
	KernelFamily = kernel.BlockKernelFactory
	// Combiner aggregates block kernels across partition blocks.
	Combiner = kernel.Combiner
	// Objective selects the candidate-scoring objective.
	Objective = mkl.Objective
	// GramMode selects the Gram backend of the lattice search (see
	// WithGramApprox).
	GramMode = mkl.GramMode
)

// Combiners, objectives, and Gram backends.
const (
	CombineSum      = kernel.CombineSum
	CombineProduct  = kernel.CombineProduct
	CVAccuracy      = mkl.CVAccuracy
	KernelAlignment = mkl.KernelAlignment
	GramExact       = mkl.GramExact
	GramNystrom     = mkl.GramNystrom
	GramRFF         = mkl.GramRFF
)

// RidgeLearner returns kernel ridge regression with the given
// regularization strength (values <= 0 select the default 1e-2).
func RidgeLearner(lambda float64) Learner {
	if lambda <= 0 {
		lambda = 1e-2
	}
	return kernelmachine.Ridge{Lambda: lambda}
}

// SVMLearner returns the SMO-trained soft-margin SVM.
func SVMLearner(c float64, seed int64) Learner {
	return kernelmachine.SVM{C: c, Seed: seed}
}

// PerceptronLearner returns the kernel perceptron.
func PerceptronLearner() Learner { return kernelmachine.Perceptron{} }

// RBFKernels returns the RBF family with gamma = base/|block| (the
// heuristic that keeps block kernels comparable across block sizes).
func RBFKernels(gamma float64) KernelFamily { return kernel.RBFFactory(gamma) }

// LinearKernels returns the inner-product family.
func LinearKernels() KernelFamily { return kernel.LinearFactory() }

// NormalizedKernels wraps a family so every block Gram has a unit
// diagonal.
func NormalizedKernels(base KernelFamily) KernelFamily {
	return kernel.NormalizedFactory(base)
}

// Progress events.
type (
	// Event is one step of a fit's progress stream (see WithProgress).
	Event = mkl.Event
	// EventKind discriminates progress events.
	EventKind = mkl.EventKind
)

// Progress event kinds. The dist-* kinds are emitted only by distributed
// fits (WithDistributedWorkers) and reflect real-time transport activity —
// their order and count vary run to run, while the candidate-evaluated
// stream stays deterministic.
const (
	EventSeedSelected       = mkl.EventSeedSelected
	EventCandidateEvaluated = mkl.EventCandidateEvaluated
	EventBestImproved       = mkl.EventBestImproved
	EventSearchFinished     = mkl.EventSearchFinished
	EventFitFinished        = mkl.EventFitFinished
	EventShardDispatched    = mkl.EventShardDispatched
	EventShardRetried       = mkl.EventShardRetried
	EventShardRedispatched  = mkl.EventShardRedispatched
	EventWorkerDown         = mkl.EventWorkerDown
	EventDistFallback       = mkl.EventDistFallback
)

// Data ingestion: real workloads enter through a declarative Schema.
type (
	// Schema declares how tabular data maps onto a Dataset (label column,
	// feature order, view boundaries, NaN policy).
	Schema = dataset.Schema
	// SchemaView declares one facet: a named group of feature columns.
	SchemaView = dataset.SchemaView
	// NaNPolicy selects how non-finite cells are ingested.
	NaNPolicy = dataset.NaNPolicy
)

// NaN policies.
const (
	NaNReject    = dataset.NaNReject
	NaNAsMissing = dataset.NaNAsMissing
	NaNDropRow   = dataset.NaNDropRow
)

// ReadCSV ingests labeled CSV under the schema: the first record is the
// header, feature cells must be finite floats (empty/NaN cells go through
// the schema's NaN policy), labels must be ±1.
func ReadCSV(r io.Reader, s Schema) (*Dataset, error) { return dataset.ReadCSV(r, s) }

// ReadJSONL ingests labeled JSON-lines data: one object per record
// mapping column names to numbers.
func ReadJSONL(r io.Reader, s Schema) (*Dataset, error) { return dataset.ReadJSONL(r, s) }

// WriteCSV renders a dataset as labeled CSV with shortest-round-trip
// floats, so ReadCSV(WriteCSV(d), d.CSVSchema()) reproduces the dataset —
// and a fit on it — bit-for-bit.
func WriteCSV(w io.Writer, d *Dataset) error { return dataset.WriteCSV(w, d) }
