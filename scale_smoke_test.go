//go:build scalesmoke

// Scale smoke for the approximate Gram engine (tag-gated like loadsmoke —
// it allocates hundreds of MB and burns minutes of CPU, which has no place
// in the tier-1 suite). Two contracts ride here:
//
//   - TestScaleSmoke_Nystrom10k: a synthetic n=10k fit under nystrom:256
//     finishes inside an explicit wall-clock and MaxRSS budget, and the
//     top-K exact re-score selects the committed golden partition. The
//     exact evaluator runs cache-free (GramCacheBlocks < 0): at n=10k one
//     cached block is 800 MB, so the composite GramIntoMatrix path — dst
//     plus one pooled scratch — is the only memory-sane exact route, and
//     this test is what keeps that route working at scale.
//   - TestScaleSmoke_Budgeted1kSpeedup: at n=1k, where the exact
//     exhaustive cone is still affordable, the budgeted search (approximate
//     lattice sweep + top-K exact re-score) must select the same partition
//     at least 5x faster — the headline claim of the low-rank engine.
//
// Run with: make scale-smoke
package iotml

import (
	"runtime"
	"syscall"
	"testing"
	"time"

	"repro/internal/mkl"
	"repro/internal/partition"
)

// scaleGolden is the partition the n=10k budgeted fit must select under
// the alignment objective — each signal feature in its own kernel, the two
// noise features fused into one. Committed as a golden so a silent drift
// in landmark seeding, factor assembly, or re-score ordering fails loudly
// instead of shipping a different model.
const scaleGolden = "1/2/3/45"

// maxRSSBytes reads the process high-water mark (Linux reports KiB).
func maxRSSBytes(t *testing.T) int64 {
	t.Helper()
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		t.Fatalf("getrusage: %v", err)
	}
	return ru.Maxrss * 1024
}

func TestScaleSmoke_Nystrom10k(t *testing.T) {
	const (
		n          = 10000
		rank       = 256
		topK       = 2
		wallBudget = 10 * time.Minute
		rssBudget  = 6 << 30 // bytes; measured peak ~2.5 GB, 2x headroom
	)
	d := gramApproxData(n)
	seed := partition.Coarsest(d.D())

	approx, err := mkl.NewEvaluator(d, mkl.Config{
		Objective: mkl.KernelAlignment, Seed: 1, Parallelism: 2,
		GramMode: mkl.GramNystrom, GramRank: rank,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cache-free exact evaluator: retaining 10k x 10k blocks (800 MB each)
	// across candidates would dwarf the RSS budget the test defends.
	exact, err := mkl.NewEvaluator(d, mkl.Config{
		Objective: mkl.KernelAlignment, Seed: 1, GramCacheBlocks: -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	res, err := mkl.BudgetedSearch(approx, exact, seed, func(e *mkl.Evaluator, s partition.Partition) (*mkl.Result, error) {
		return mkl.ChainSearchParallel(e, s, mkl.BestOfChain)
	}, topK)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	rss := maxRSSBytes(t)
	t.Logf("n=%d nystrom:%d topK=%d: best=%v score=%.6f evals=%d wall=%v rss=%.1fGB",
		n, rank, topK, res.Best, res.Score, res.Evaluations, wall.Round(time.Second), float64(rss)/(1<<30))

	if got := res.Best.String(); got != scaleGolden {
		t.Errorf("selected partition %s, golden %s", got, scaleGolden)
	}
	if len(res.Trace) == 0 || len(res.Trace) > topK {
		t.Errorf("exact re-score trace has %d steps, want 1..%d", len(res.Trace), topK)
	}
	if wall > wallBudget {
		t.Errorf("wall clock %v exceeds budget %v", wall, wallBudget)
	}
	if rss > rssBudget {
		t.Errorf("MaxRSS %d bytes exceeds budget %d", rss, int64(rssBudget))
	}
}

func TestScaleSmoke_Budgeted1kSpeedup(t *testing.T) {
	const (
		n       = 1000
		rank    = 16
		topK    = 4
		speedup = 5.0
	)
	// CVAccuracy is the objective where the engine's headline holds: the
	// exact path pays an O(n³) ridge solve per fold per candidate, while
	// the low-rank path solves in the R-dimensional primal (R = 16·blocks
	// here). Alignment's exact twin is only O(n²) per candidate, too cheap
	// for a stable 5x at n=1k.
	d := gramApproxData(n)
	seed := partition.Coarsest(d.D())

	// Budgeted phase first, exact reference second, with a forced GC at
	// the phase boundary: both phases then start from a settled heap
	// instead of the second inheriting the first one's GC debt (which
	// skews the ratio either way on small absolute times).
	approx, err := mkl.NewEvaluator(d, mkl.Config{
		Objective: mkl.CVAccuracy, Seed: 1,
		GramMode: mkl.GramNystrom, GramRank: rank,
	})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := mkl.NewEvaluator(d, mkl.Config{Objective: mkl.CVAccuracy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	t0 := time.Now()
	res, err := mkl.BudgetedSearch(approx, exact, seed, func(e *mkl.Evaluator, s partition.Partition) (*mkl.Result, error) {
		return mkl.ExhaustiveCone(e, s)
	}, topK)
	if err != nil {
		t.Fatal(err)
	}
	budgetWall := time.Since(t0)

	exactRef, err := mkl.NewEvaluator(d, mkl.Config{Objective: mkl.CVAccuracy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	t0 = time.Now()
	want, err := mkl.ExhaustiveCone(exactRef, seed)
	if err != nil {
		t.Fatal(err)
	}
	exactWall := time.Since(t0)

	got := exactWall.Seconds() / budgetWall.Seconds()
	t.Logf("n=%d: exact cone %v, budgeted (nystrom:%d, topK=%d) %v — %.1fx",
		n, exactWall.Round(time.Millisecond), rank, topK, budgetWall.Round(time.Millisecond), got)

	if !res.Best.Equal(want.Best) {
		t.Errorf("budgeted selected %v, exact cone selected %v", res.Best, want.Best)
	}
	if got < speedup {
		t.Errorf("budgeted search only %.1fx faster than exact (need >= %.0fx)", got, speedup)
	}
}
