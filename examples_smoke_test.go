package iotml

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesSmoke builds every program under examples/ and runs it with
// the tiny smoke workload (IOTML_EXAMPLE_TINY=1), so example drift — an API
// change that breaks a main.go, or a regression that makes one crash —
// fails CI instead of rotting silently. The tiny configs keep the whole
// sweep fast enough to stay enabled under -short.
func TestExamplesSmoke(t *testing.T) {
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("reading examples/: %v", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) < 5 {
		t.Fatalf("found %d example programs %v, expected at least the 5 shipped ones", len(names), names)
	}

	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin+string(os.PathSeparator), "./examples/...")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./examples/...: %v\n%s", err, out)
	}

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command(filepath.Join(bin, name))
			cmd.Env = append(os.Environ(), "IOTML_EXAMPLE_TINY=1")
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
