# Local targets mirror the CI jobs in .github/workflows/ci.yml one-to-one,
# so a green `make ci` locally means a green CI run.

GO ?= go

# Pinned staticcheck release, mirrored by the CI build job; bump both
# together.
STATICCHECK_VERSION ?= 2025.1.1

# Pinned govulncheck release, mirrored by the CI build job; bump both
# together.
GOVULNCHECK_VERSION ?= v1.1.4

# The tag-gated smoke suites (load-smoke, scale-smoke) live in _test.go
# files behind these build tags; every static gate below runs once per tag
# set so gated code faces the same checks as the default build.
BUILD_TAGS := loadsmoke scalesmoke

.PHONY: all build vet fmt staticcheck iotml-lint govulncheck lint test shuffle short race bench bench-smoke bench-json serve-smoke fit-smoke dist-smoke load-smoke scale-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@for t in $(BUILD_TAGS); do \
		echo "vet -tags $$t"; \
		$(GO) vet -tags $$t ./... || exit 1; \
	done

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

# staticcheck prefers an installed binary (any dev box with one) and falls
# back to running the pinned release through the module cache — the exact
# invocation CI uses, so local and CI findings agree. Runs once per tag set
# so the tag-gated smoke tests are checked too.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		sc="staticcheck"; \
	else \
		sc="$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
	fi; \
	$$sc ./... || exit 1; \
	for t in $(BUILD_TAGS); do \
		echo "staticcheck -tags $$t"; \
		$$sc -tags $$t ./... || exit 1; \
	done

# iotml-lint runs the repo's own determinism analyzers (internal/analyzers:
# seededrand, walltime, maporder, hotpathalloc) over every package, once per
# tag set so the tag-gated smoke tests face the same determinism contracts.
iotml-lint:
	$(GO) run ./cmd/iotml-lint ./...
	@for t in $(BUILD_TAGS); do \
		echo "iotml-lint -tags $$t"; \
		$(GO) run ./cmd/iotml-lint -tags $$t ./... || exit 1; \
	done

# govulncheck scans the module against the Go vulnerability database. Same
# pinned-version pattern as staticcheck: prefer an installed binary, fall
# back to the pinned release CI runs. Needs network for the vuln DB, so it
# is a CI step and an on-demand local target, not part of `lint`.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...; \
	fi

lint: vet fmt iotml-lint

test:
	$(GO) test ./...

# shuffle re-runs the suite with randomized test and subtest order, so
# inter-test state dependencies fail loudly instead of hiding behind
# declaration order. Mirrors the CI test job's shuffle step.
shuffle:
	$(GO) test -shuffle=on -short ./...

short:
	$(GO) test -short ./...

# The deterministic core packages get a full (not -short) race run: their
# suites pin the bit-identity contracts under concurrency, which is exactly
# where the race detector earns its keep. The rest of the tree stays on
# -short so the target finishes in CI time.
RACE_FULL_PKGS := ./internal/mkl ./internal/parsearch ./internal/distsearch ./internal/engine ./internal/serve

race:
	$(GO) test -race -short ./...
	$(GO) test -race -count=1 $(RACE_FULL_PKGS)

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# serve-smoke drives the model lifecycle end to end: fit a tiny model,
# start `iotml serve`, assert /healthz plus golden /predict responses
# (batched == single == committed fixture), then SIGTERM the server and
# assert a clean drain (exit 0). Mirrors the CI serve-smoke job.
serve-smoke:
	bash scripts/serve_smoke.sh

# fit-smoke drives the real-data fit path end to end: `iotml fit -data` on
# the committed tiny CSV, progress-JSONL capture, and a golden check on the
# selected partition. Mirrors the CI fit-smoke job.
fit-smoke:
	bash scripts/fit_smoke.sh

# dist-smoke drives the fault-tolerant distributed search end to end: two
# real search-worker processes, a fit sharded across them with one worker
# SIGKILLed mid-sweep, then a fit against an all-dead fleet — both must
# reproduce the committed fit-smoke selection exactly (worker loss costs
# re-dispatches, never correctness). Mirrors the CI dist-smoke job.
dist-smoke:
	bash scripts/dist_smoke.sh

# load-smoke saturates the multi-model server across a live hot-swap: a
# 16-client fleet hammers a throttled model, the artifact is replaced on
# disk mid-run, and the test asserts zero dropped admitted requests (every
# 200 is bit-identical to one model generation), well-formed 429/503
# shedding with Retry-After, and a p99 latency bound. Tag-gated out of the
# regular suite because it deliberately burns CPU. Mirrors the CI
# load-smoke job.
load-smoke:
	$(GO) test -tags loadsmoke -run TestLoadSmoke -count=1 -v ./internal/serve/

# scale-smoke exercises the approximate Gram engine at real scale: a
# synthetic n=10k fit under -gram nystrom:256 must finish inside a
# wall-clock and RSS budget, its top-K exact re-score must select the
# committed golden partition, and the budgeted search at n=1k must beat the
# exact exhaustive cone by the promised factor. Tag-gated like load-smoke
# because it deliberately allocates hundreds of MB and burns CPU. Mirrors
# the CI scale-smoke job.
scale-smoke:
	$(GO) test -tags scalesmoke -run TestScaleSmoke -count=1 -v -timeout 15m .

# BENCHTIME tunes the machine-readable benchmark run: the 1x default keeps
# the CI capture step fast; override with e.g. BENCHTIME=1s for stable
# numbers worth comparing across commits (the nightly workflow does).
# BENCHJSON_FLAGS passes extra flags to cmd/benchjson: pull-request CI sets
# -fail-on-regress so baseline regressions block the merge, while
# push-to-main and local runs stay warn-only.
BENCHTIME ?= 1x
BENCHJSON_FLAGS ?=

# bench-json runs the Gram-engine, parallel-search, and candidate-scoring
# suites and captures ns/op + allocs/op per benchmark in BENCH_gram.json,
# so the perf trajectory is tracked from PR 2 onward (CI uploads it as an
# artifact). Before the snapshot is replaced, cmd/benchjson diffs the fresh
# numbers against the committed baseline and warn-annotates any benchmark
# whose ns/op or allocs/op regressed by more than 20% (warnings only —
# 1x captures are noisy). The bench output lands in a temp file first so a
# benchmark failure fails the target instead of being masked by the final
# pipe stage, and the new JSON lands in a temp file so the baseline is
# still readable during the comparison and is only touched on success.
# Deliberately not part of `ci`: it would overwrite the committed
# BENCH_gram.json snapshot with single-iteration noise on every local run
# (CI runs it as its own step).
bench-json:
	@out=$$(mktemp); \
	if ! $(GO) test -bench='^(BenchmarkGram_|BenchmarkGramApprox_|BenchmarkBackend_|BenchmarkParallel_|BenchmarkScore_|BenchmarkFit_|BenchmarkServe_)' -benchmem -benchtime=$(BENCHTIME) -run='^$$' . > $$out; then \
		cat $$out; rm -f $$out; exit 1; \
	fi; \
	$(GO) run ./cmd/benchjson -baseline BENCH_gram.json -threshold 0.20 $(BENCHJSON_FLAGS) < $$out > BENCH_gram.json.tmp \
		&& mv BENCH_gram.json.tmp BENCH_gram.json && rm -f $$out
	@echo "wrote BENCH_gram.json"

ci: build lint test shuffle race bench-smoke serve-smoke fit-smoke dist-smoke load-smoke scale-smoke
