# Local targets mirror the CI jobs in .github/workflows/ci.yml one-to-one,
# so a green `make ci` locally means a green CI run.

GO ?= go

.PHONY: all build vet fmt lint test short race bench bench-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

lint: vet fmt

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: build lint test race bench-smoke
