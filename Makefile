# Local targets mirror the CI jobs in .github/workflows/ci.yml one-to-one,
# so a green `make ci` locally means a green CI run.

GO ?= go

.PHONY: all build vet fmt lint test short race bench bench-smoke bench-json ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

lint: vet fmt

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# BENCHTIME tunes the machine-readable benchmark run: the 1x default keeps
# the CI capture step fast; override with e.g. BENCHTIME=1s for stable
# numbers worth comparing across commits.
BENCHTIME ?= 1x

# bench-json runs the Gram-engine, parallel-search, and candidate-scoring
# suites and captures ns/op + allocs/op per benchmark in BENCH_gram.json,
# so the perf trajectory is tracked from PR 2 onward (CI uploads it as an
# artifact). Before the snapshot is replaced, cmd/benchjson diffs the fresh
# numbers against the committed baseline and warn-annotates any benchmark
# whose ns/op or allocs/op regressed by more than 20% (warnings only —
# 1x captures are noisy). The bench output lands in a temp file first so a
# benchmark failure fails the target instead of being masked by the final
# pipe stage, and the new JSON lands in a temp file so the baseline is
# still readable during the comparison and is only touched on success.
# Deliberately not part of `ci`: it would overwrite the committed
# BENCH_gram.json snapshot with single-iteration noise on every local run
# (CI runs it as its own step).
bench-json:
	@out=$$(mktemp); \
	if ! $(GO) test -bench='^(BenchmarkGram_|BenchmarkParallel_|BenchmarkScore_)' -benchmem -benchtime=$(BENCHTIME) -run='^$$' . > $$out; then \
		cat $$out; rm -f $$out; exit 1; \
	fi; \
	$(GO) run ./cmd/benchjson -baseline BENCH_gram.json -threshold 0.20 < $$out > BENCH_gram.json.tmp \
		&& mv BENCH_gram.json.tmp BENCH_gram.json && rm -f $$out
	@echo "wrote BENCH_gram.json"

ci: build lint test race bench-smoke
