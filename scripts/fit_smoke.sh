#!/usr/bin/env bash
# fit-smoke: the end-to-end gate on the real-data fit path. Trains via the
# new CLI ingestion route — `iotml fit -data` on the committed tiny CSV
# (40-row biometric workload, linear kernel + ridge so every float op is
# IEEE exact) — captures the progress stream as JSONL, and asserts that
# the selected partition matches the committed golden selection.
#
# The full selection lines (scores included) pin amd64 float codegen, so
# their diff only runs where CI runs; the partition comparison — the
# paper's actual selection — runs on every architecture.
#
# Regenerate the golden deliberately with: UPDATE=1 scripts/fit_smoke.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FIX="$ROOT/testdata/fit-smoke"
TMP="$(mktemp -d)"
cleanup() { rm -rf "$TMP"; }
trap cleanup EXIT

cd "$ROOT"
go build -o "$TMP/iotml" ./cmd/iotml

echo "fit-smoke: fitting from $FIX/train.csv"
"$TMP/iotml" -parallel 1 fit -o "$TMP/model.iotml" \
  -data "$FIX/train.csv" -kernel linear \
  -views "face:face_0,face_1;fingerprint:fingerprint_0,fingerprint_1;eeg:eeg_0,eeg_1" \
  -progress-jsonl "$TMP/progress.jsonl" > "$TMP/fit.log"

grep -E '^(seed|best) partition:' "$TMP/fit.log" > "$TMP/selection.txt"

if [ "${UPDATE:-}" = 1 ]; then
  cp "$TMP/selection.txt" "$FIX/selection.golden.txt"
  echo "fit-smoke: golden regenerated under $FIX"
  exit 0
fi

# The progress stream must be present and well-formed: it starts with the
# seed, ends with fit-finished, and carries candidate evaluations between.
head -1 "$TMP/progress.jsonl" | grep -q '"kind":"seed-selected"'
tail -1 "$TMP/progress.jsonl" | grep -q '"kind":"fit-finished"'
grep -q '"kind":"candidate-evaluated"' "$TMP/progress.jsonl"

# The artifact must exist and be loadable by the offline scorer.
echo '{"instances": [[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]]}' > "$TMP/req.json"
"$TMP/iotml" predict -m "$TMP/model.iotml" -in "$TMP/req.json" > /dev/null

if [ "$(go env GOARCH)" = amd64 ]; then
  diff -u "$FIX/selection.golden.txt" "$TMP/selection.txt"
else
  echo "fit-smoke: skipping full-line golden diff on $(go env GOARCH) (scores are amd64-pinned)"
fi

# Architecture-independent check: the selected partition itself.
want=$(sed -nE 's/^best partition: ([^ ]+).*/\1/p' "$FIX/selection.golden.txt")
got=$(sed -nE 's/^best partition: ([^ ]+).*/\1/p' "$TMP/selection.txt")
if [ -z "$got" ] || [ "$got" != "$want" ]; then
  echo "fit-smoke: selected partition $got, golden $want" >&2
  exit 1
fi

echo "fit-smoke: OK (selection == golden, progress stream well-formed)"
