#!/usr/bin/env bash
# dist-smoke: the end-to-end gate on the fault-tolerant distributed search.
# Boots two real `iotml search-worker` processes, runs `iotml fit
# -dist-workers` over the same committed CSV the fit-smoke uses, SIGKILLs
# one worker as soon as the first shard is dispatched, and asserts that the
# selection still matches the committed fit-smoke golden — worker loss
# costs re-dispatches, never correctness. A second phase points the fit at
# a fleet of dead addresses and asserts the coordinator's graceful local
# fallback reproduces the same selection.
#
# The golden is testdata/fit-smoke/selection.golden.txt: a distributed fit
# is bit-identical to the in-process fit that produced it, so the two
# smokes share one fixture.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FIX="$ROOT/testdata/fit-smoke"
TMP="$(mktemp -d)"
W1_PID=""
W2_PID=""
FIT_PID=""
cleanup() {
  for pid in "$FIT_PID" "$W1_PID" "$W2_PID"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

cd "$ROOT"
go build -o "$TMP/iotml" ./cmd/iotml

# start_worker LOGFILE -> prints the bound address. Port 0 lets the kernel
# pick, so parallel CI jobs never collide.
start_worker() {
  local log=$1
  "$TMP/iotml" search-worker -addr 127.0.0.1:0 > "$log" 2>&1 &
  local pid=$!
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -nE 's/^search-worker: listening on ([^ ]+).*/\1/p' "$log" | head -1)
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "dist-smoke: worker exited early:" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "dist-smoke: worker never reported its address" >&2
    cat "$log" >&2
    exit 1
  fi
  echo "$pid $addr"
}

echo "dist-smoke: starting two search workers"
read -r W1_PID W1_ADDR <<< "$(start_worker "$TMP/worker1.log")"
read -r W2_PID W2_ADDR <<< "$(start_worker "$TMP/worker2.log")"
echo "dist-smoke: workers at $W1_ADDR and $W2_ADDR"

FIT_ARGS=(-parallel 1 fit -data "$FIX/train.csv" -kernel linear
  -views "face:face_0,face_1;fingerprint:fingerprint_0,fingerprint_1;eeg:eeg_0,eeg_1")

echo "dist-smoke: distributed fit with one worker SIGKILLed mid-sweep"
"$TMP/iotml" "${FIT_ARGS[@]}" -o "$TMP/model-dist.iotml" -v \
  -dist-workers "$W1_ADDR,$W2_ADDR" -dist-attempts 2 -dist-deadline 10s \
  > "$TMP/fit-dist.log" 2> "$TMP/fit-dist.err" &
FIT_PID=$!

# Kill worker 1 the moment the first shard is dispatched (or immediately
# after the fit finishes, if it outran us — the selection assertion below
# holds either way).
for _ in $(seq 1 100); do
  if grep -q 'fit: dist: shard-dispatched' "$TMP/fit-dist.err" 2>/dev/null; then
    break
  fi
  kill -0 "$FIT_PID" 2>/dev/null || break
  sleep 0.05
done
kill -9 "$W1_PID" 2>/dev/null || true
W1_PID=""

fit_code=0
wait "$FIT_PID" || fit_code=$?
FIT_PID=""
if [ "$fit_code" != 0 ]; then
  echo "dist-smoke: distributed fit failed ($fit_code):" >&2
  cat "$TMP/fit-dist.err" >&2
  exit 1
fi
grep -q 'fit: dist: shard-dispatched' "$TMP/fit-dist.err"

# The distributed selection must match the committed in-process golden
# (the paper's actual selection; scores are asserted by fit-smoke).
want=$(sed -nE 's/^best partition: ([^ ]+).*/\1/p' "$FIX/selection.golden.txt")
got=$(sed -nE 's/^best partition: ([^ ]+).*/\1/p' "$TMP/fit-dist.log")
if [ -z "$got" ] || [ "$got" != "$want" ]; then
  echo "dist-smoke: distributed fit selected $got, golden $want" >&2
  cat "$TMP/fit-dist.err" >&2
  exit 1
fi
echo "dist-smoke: selection survived the worker kill ($got)"

echo "dist-smoke: distributed fit against an all-dead fleet"
"$TMP/iotml" "${FIT_ARGS[@]}" -o "$TMP/model-fallback.iotml" -v \
  -dist-workers "127.0.0.1:9,127.0.0.1:13" -dist-attempts 1 -dist-deadline 5s \
  > "$TMP/fit-fallback.log" 2> "$TMP/fit-fallback.err"
grep -q 'fit: dist: dist-fallback' "$TMP/fit-fallback.err"
got=$(sed -nE 's/^best partition: ([^ ]+).*/\1/p' "$TMP/fit-fallback.log")
if [ -z "$got" ] || [ "$got" != "$want" ]; then
  echo "dist-smoke: fallback fit selected $got, golden $want" >&2
  cat "$TMP/fit-fallback.err" >&2
  exit 1
fi
echo "dist-smoke: local fallback reproduced the selection ($got)"

echo "dist-smoke: OK (kill-mid-sweep and dead-fleet fallback both match the golden)"
