#!/usr/bin/env bash
# serve-smoke: the end-to-end gate on the model lifecycle. Fits a tiny
# deterministic model (linear kernel + ridge, so every float op is IEEE
# exact and the committed goldens are platform-stable), scores a committed
# request with `iotml predict`, starts `iotml serve`, and asserts that
# /healthz answers, that /predict reproduces the committed golden responses
# byte-for-byte for both a batched and a single-instance request, and that
# the batched and single scores agree exactly.
#
# Regenerate the goldens deliberately with: UPDATE=1 scripts/serve_smoke.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FIX="$ROOT/testdata/serve-smoke"
TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

cd "$ROOT"
go build -o "$TMP/iotml" ./cmd/iotml

echo "serve-smoke: fitting the smoke model"
"$TMP/iotml" -parallel 1 fit -o "$TMP/model.iotml" \
  -workload biometric -n 60 -kernel linear -learner ridge -seed 1 > "$TMP/fit.log"

echo "serve-smoke: offline predict"
"$TMP/iotml" predict -m "$TMP/model.iotml" -in "$FIX/request.json" > "$TMP/predict-batch.json"
"$TMP/iotml" predict -m "$TMP/model.iotml" -in "$FIX/request-single.json" > "$TMP/predict-single.json"

# The port walks forward on collision: if the chosen port is already
# bound (a parallel CI job, a stale server), the bind failure is detected
# and the next candidate is tried rather than failing the smoke.
BASE_PORT="${SERVE_SMOKE_PORT:-18321}"
up=""
for try in 0 1 2 3 4; do
  ADDR="127.0.0.1:$((BASE_PORT + try * 7))"
  echo "serve-smoke: starting iotml serve on $ADDR"
  "$TMP/iotml" serve -m "$TMP/model.iotml" -addr "$ADDR" > "$TMP/serve.log" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" > "$TMP/healthz.json" 2>/dev/null; then
      up=1
      break
    fi
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
  done
  [ -n "$up" ] && break
  if kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "serve-smoke: server did not come up on $ADDR" >&2
    cat "$TMP/serve.log" >&2
    exit 1
  fi
  SERVE_PID=""
  if grep -q 'address already in use' "$TMP/serve.log"; then
    echo "serve-smoke: $ADDR in use, trying the next port"
    continue
  fi
  echo "serve-smoke: server exited early:" >&2
  cat "$TMP/serve.log" >&2
  exit 1
done
if [ -z "$up" ]; then
  echo "serve-smoke: no free port after 5 tries from $BASE_PORT" >&2
  exit 1
fi

grep -q '"status":"ok"' "$TMP/healthz.json"
curl -fsS "http://$ADDR/model" > "$TMP/model.json"
grep -q '"format_version":1' "$TMP/model.json"
grep -q '"learner_kind":"ridge"' "$TMP/model.json"

echo "serve-smoke: querying /predict"
curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary @"$FIX/request.json" "http://$ADDR/predict" > "$TMP/server-batch.json"
curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary @"$FIX/request-single.json" "http://$ADDR/predict" > "$TMP/server-single.json"

# The versioned route must alias the legacy route byte-for-byte: /predict
# resolves to the default model, so /v1/models/default/predict is the same
# scoring path behind a different URL.
echo "serve-smoke: asserting /v1 route parity"
curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary @"$FIX/request.json" "http://$ADDR/v1/models/default/predict" > "$TMP/server-batch-v1.json"
diff -u "$TMP/server-batch.json" "$TMP/server-batch-v1.json"
curl -fsS "http://$ADDR/v1/healthz" | grep -q '"status":"ok"'
curl -fsS "http://$ADDR/v1/models" > "$TMP/models.json"
grep -q '"id":"default"' "$TMP/models.json"
grep -Eq '"fingerprint":"[0-9a-f]{16}"' "$TMP/models.json"

# The Prometheus exposition must carry the per-model serving counters.
curl -fsS "http://$ADDR/v1/metrics" > "$TMP/metrics.txt"
grep -q '^iotml_requests_total{model="default"} ' "$TMP/metrics.txt"
grep -q '^iotml_shed_total{model="default"} 0' "$TMP/metrics.txt"
grep -q '^iotml_models 1' "$TMP/metrics.txt"

# Unknown models answer the structured error envelope with a stable code.
code=$(curl -s -o "$TMP/notfound.json" -w '%{http_code}' \
  -X POST --data-binary @"$FIX/request.json" "http://$ADDR/v1/models/ghost/predict")
if [ "$code" != 404 ]; then
  echo "serve-smoke: unknown model answered $code, want 404" >&2
  exit 1
fi
grep -q '"code":"model_not_found"' "$TMP/notfound.json"

# Malformed traffic must be rejected at the boundary, not crash a worker.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  --data-binary '{"instances": [[1, 2]]}' "http://$ADDR/predict")
if [ "$code" != 400 ]; then
  echo "serve-smoke: wrong-dimension request answered $code, want 400" >&2
  exit 1
fi

if [ "${UPDATE:-}" = 1 ]; then
  cp "$TMP/server-batch.json" "$FIX/response-batch.golden.json"
  cp "$TMP/server-single.json" "$FIX/response-single.golden.json"
  echo "serve-smoke: goldens regenerated under $FIX"
  exit 0
fi

# The served responses, batched and single, must match the committed
# goldens byte-for-byte, and the offline predict output must match the
# served output (one scoring path, two transports). The goldens pin amd64
# float codegen — other architectures may contract mul-adds into FMA and
# shift last bits — so the golden diffs only run where CI runs; the
# internal-consistency checks below run everywhere.
if [ "$(go env GOARCH)" = amd64 ]; then
  diff -u "$FIX/response-batch.golden.json" "$TMP/server-batch.json"
  diff -u "$FIX/response-single.golden.json" "$TMP/server-single.json"
else
  echo "serve-smoke: skipping golden diffs on $(go env GOARCH) (goldens are amd64-pinned)"
fi
diff -u "$TMP/server-batch.json" "$TMP/predict-batch.json"
diff -u "$TMP/server-single.json" "$TMP/predict-single.json"

# Batched and single requests must agree on the shared instance's score
# (shortest-round-trip JSON floats, so textual equality is bit equality).
first_batch=$(sed -E 's/.*"scores":\[([0-9.eE+-]+)[],].*/\1/' "$TMP/server-batch.json")
first_single=$(sed -E 's/.*"scores":\[([0-9.eE+-]+)[],].*/\1/' "$TMP/server-single.json")
if [ -z "$first_batch" ] || [ "$first_batch" != "$first_single" ]; then
  echo "serve-smoke: batched score ($first_batch) != single score ($first_single)" >&2
  exit 1
fi

# Graceful shutdown: SIGTERM must drain the pipeline and exit 0 (the
# signal handler in `iotml serve` routes through Server.Shutdown).
echo "serve-smoke: asserting clean SIGTERM shutdown"
kill -TERM "$SERVE_PID"
shutdown_code=0
wait "$SERVE_PID" || shutdown_code=$?
SERVE_PID=""
if [ "$shutdown_code" != 0 ]; then
  echo "serve-smoke: SIGTERM exit code $shutdown_code, want 0:" >&2
  cat "$TMP/serve.log" >&2
  exit 1
fi
if ! grep -q "shutdown complete" "$TMP/serve.log"; then
  echo "serve-smoke: server log missing the graceful-shutdown marker:" >&2
  cat "$TMP/serve.log" >&2
  exit 1
fi

echo "serve-smoke: OK (batched == single == golden, clean shutdown)"
