package iotml

import (
	"context"
	"testing"

	"repro/internal/mkl"
)

func TestPublicAPIQuickstartPath(t *testing.T) {
	cfg := DefaultBiometricConfig()
	cfg.N = 100
	train := SyntheticBiometric(cfg, NewRNG(1))
	train.Standardize()
	test := SyntheticBiometric(cfg, NewRNG(2))
	test.Standardize()

	res, err := PartitionDrivenMKL(train, FitConfig{
		MKL: mkl.Config{Objective: mkl.KernelAlignment, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.N() != train.D() {
		t.Fatalf("partition over %d features, want %d", res.Best.N(), train.D())
	}
	acc, err := Deploy(train, test, res.Best, MKLConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acc <= 0.5 {
		t.Errorf("deployed accuracy = %v, want better than chance", acc)
	}
}

func TestPublicAPIPartitionHelpers(t *testing.T) {
	p, err := ParsePartition("1/23/4")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks() != 3 {
		t.Errorf("blocks = %d", p.NumBlocks())
	}
	if FinestPartition(4).Rank() != 0 || CoarsestPartition(4).Rank() != 3 {
		t.Error("finest/coarsest ranks wrong")
	}
}

func TestPublicAPIRoughExample(t *testing.T) {
	tbl := PhonesExample()
	if tbl.N() != 4 {
		t.Errorf("phones table has %d rows", tbl.N())
	}
}

// TestPublicAPIServePath drives the root serving surface end to end: fit,
// package, register, Serve with re-exported options, and score through the
// server bit-identically to the offline Predictor.
func TestPublicAPIServePath(t *testing.T) {
	cfg := DefaultBiometricConfig()
	cfg.N = 60
	train := SyntheticBiometric(cfg, NewRNG(1))
	train.Standardize()
	res, err := Fit(context.Background(), train, WithFolds(4), WithCVSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	art, err := res.Artifact()
	if err != nil {
		t.Fatal(err)
	}

	reg := NewServeRegistry()
	if err := reg.Load("m", art); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(context.Background(), reg,
		WithImmediateFlush(),
		WithWorkers(1),
		WithQueueDepth(8),
		WithGlobalQueueDepth(16),
		WithDefaultModel("m"),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pred, err := NewPredictor(art)
	if err != nil {
		t.Fatal(err)
	}
	q := train.X[:5]
	want, err := pred.Scores(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.ScoreBatch("m", q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("served score %d = %v, offline %v", i, got[i], want[i])
		}
	}
	if srv.DefaultModel() != "m" {
		t.Fatalf("DefaultModel = %q", srv.DefaultModel())
	}
	if m, ok := srv.SnapshotModel("m"); !ok || m.Requests != 1 {
		t.Fatalf("snapshot = %+v ok=%v", m, ok)
	}
	if fp, ok := reg.Fingerprint("m"); !ok || len(fp) != 16 {
		t.Fatalf("fingerprint = %q ok=%v", fp, ok)
	}
}
