package iotml

import (
	"testing"

	"repro/internal/mkl"
)

func TestPublicAPIQuickstartPath(t *testing.T) {
	cfg := DefaultBiometricConfig()
	cfg.N = 100
	train := SyntheticBiometric(cfg, NewRNG(1))
	train.Standardize()
	test := SyntheticBiometric(cfg, NewRNG(2))
	test.Standardize()

	res, err := PartitionDrivenMKL(train, FitConfig{
		MKL: mkl.Config{Objective: mkl.KernelAlignment, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.N() != train.D() {
		t.Fatalf("partition over %d features, want %d", res.Best.N(), train.D())
	}
	acc, err := Deploy(train, test, res.Best, MKLConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acc <= 0.5 {
		t.Errorf("deployed accuracy = %v, want better than chance", acc)
	}
}

func TestPublicAPIPartitionHelpers(t *testing.T) {
	p, err := ParsePartition("1/23/4")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks() != 3 {
		t.Errorf("blocks = %d", p.NumBlocks())
	}
	if FinestPartition(4).Rank() != 0 || CoarsestPartition(4).Rank() != 3 {
		t.Error("finest/coarsest ranks wrong")
	}
}

func TestPublicAPIRoughExample(t *testing.T) {
	tbl := PhonesExample()
	if tbl.N() != 4 {
		t.Errorf("phones table has %d rows", tbl.N())
	}
}
